package netram

import (
	"bytes"
	"errors"
	"testing"

	"github.com/ics-forth/perseas/internal/transport"
	"github.com/ics-forth/perseas/internal/wire"
)

func TestPushManyMatchesIndividualPushes(t *testing.T) {
	batched := newRig(t, 2)
	plain := newRig(t, 2)
	regB, err := batched.client.Malloc("db", 2048)
	if err != nil {
		t.Fatal(err)
	}
	regP, err := plain.client.Malloc("db", 2048)
	if err != nil {
		t.Fatal(err)
	}
	for i := range regB.Local {
		regB.Local[i] = byte(i * 13)
		regP.Local[i] = byte(i * 13)
	}
	ranges := []Range{{Offset: 0, Length: 64}, {Offset: 500, Length: 40}, {Offset: 1500, Length: 8}}

	t0 := batched.clock.Now()
	if err := batched.client.PushMany(regB, ranges); err != nil {
		t.Fatal(err)
	}
	batchedCost := batched.clock.Now() - t0

	t0 = plain.clock.Now()
	for _, r := range ranges {
		if err := plain.client.Push(regP, r.Offset, r.Length); err != nil {
			t.Fatal(err)
		}
	}
	plainCost := plain.clock.Now() - t0

	// The SCI model must price the batch exactly like individual stores
	// (the batch only saves round trips on transports that have them).
	if batchedCost != plainCost {
		t.Errorf("batched cost %v != per-range cost %v", batchedCost, plainCost)
	}
	// And both leave identical bytes on every mirror.
	for i := range batched.servers {
		sb, err := batched.servers[i].Connect("db")
		if err != nil {
			t.Fatal(err)
		}
		sp, err := plain.servers[i].Connect("db")
		if err != nil {
			t.Fatal(err)
		}
		db, _ := batched.servers[i].Read(sb.ID, 0, 2048)
		dp, _ := plain.servers[i].Read(sp.ID, 0, 2048)
		if !bytes.Equal(db, dp) {
			t.Errorf("mirror %d contents diverge between batched and plain pushes", i)
		}
	}
	// Stats agree too.
	if batched.client.Stats() != plain.client.Stats() {
		t.Errorf("stats diverge: %+v vs %+v", batched.client.Stats(), plain.client.Stats())
	}
}

// unbatched hides the BatchWriter capability of an inner transport so the
// fallback loop is exercised.
type unbatched struct {
	transport.Transport
}

func TestPushManyFallsBackWithoutBatchSupport(t *testing.T) {
	r := newRig(t, 1)
	c, err := NewClient([]Mirror{{Name: "plain", T: unbatched{r.client.mirrors[0].T}}})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := c.Malloc("db", 1024)
	if err != nil {
		t.Fatal(err)
	}
	copy(reg.Local[100:], []byte("fallback"))
	if err := c.PushMany(reg, []Range{{Offset: 100, Length: 8}, {Offset: 500, Length: 4}}); err != nil {
		t.Fatal(err)
	}
	seg, err := r.servers[0].Connect("db")
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.servers[0].Read(seg.ID, 100, 8)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "fallback" {
		t.Errorf("mirror holds %q", got)
	}
}

func TestPushManyValidation(t *testing.T) {
	r := newRig(t, 1)
	reg, err := r.client.Malloc("db", 64)
	if err != nil {
		t.Fatal(err)
	}
	err = r.client.PushMany(reg, []Range{{Offset: 0, Length: 8}, {Offset: 60, Length: 8}})
	if !errors.Is(err, ErrBadRange) {
		t.Errorf("overflow batch: %v", err)
	}
	// Nothing was pushed: validation precedes transmission.
	if st := r.client.Stats(); st.Pushes != 0 {
		t.Errorf("partial batch transmitted: %+v", st)
	}
	if err := r.client.PushMany(reg, nil); err != nil {
		t.Errorf("empty batch should be a no-op: %v", err)
	}
	if err := r.client.PushMany(reg, []Range{{Offset: 0, Length: 0}}); err != nil {
		t.Errorf("zero-length ranges should be skipped: %v", err)
	}
}

func TestPushManySurvivesMirrorDeath(t *testing.T) {
	r := newRig(t, 2)
	reg, err := r.client.Malloc("db", 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.client.PushAll(reg); err != nil {
		t.Fatal(err)
	}
	r.servers[0].Crash()
	copy(reg.Local, []byte("survivors"))
	if err := r.client.PushMany(reg, []Range{{Offset: 0, Length: 9}}); err != nil {
		t.Fatalf("batch push with one mirror down: %v", err)
	}
	if got := r.client.Live(); got != 1 {
		t.Errorf("Live = %d, want 1", got)
	}
	r.servers[1].Crash()
	if err := r.client.PushMany(reg, []Range{{Offset: 0, Length: 9}}); !errors.Is(err, ErrAllMirrorsDown) {
		t.Errorf("all down: %v", err)
	}
}

func TestServerWriteBatchAtomicity(t *testing.T) {
	r := newRig(t, 1)
	reg, err := r.client.Malloc("db", 64)
	if err != nil {
		t.Fatal(err)
	}
	copy(reg.Local, []byte("untouched"))
	if err := r.client.PushAll(reg); err != nil {
		t.Fatal(err)
	}
	// A batch whose second entry is invalid must leave the first
	// unapplied on the server.
	err = r.servers[0].WriteBatch([]wire.BatchEntry{
		{Seg: reg.Handle(0).ID, Offset: 0, Data: []byte("DIRTY")},
		{Seg: 9999, Offset: 0, Data: []byte("bad")},
	})
	if err == nil {
		t.Fatal("invalid batch should fail")
	}
	got, err := r.servers[0].Read(reg.Handle(0).ID, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "untouched" {
		t.Errorf("batch was not atomic: %q", got)
	}
}
