// Online mirror re-replication: replacing a dead mirror with a spare
// node without ever stalling the data path for the whole copy.
//
// RebuildMirror runs in three phases. Phase 1 bulk-copies every live
// region onto the replacement in read-chunk pieces, reading each chunk
// from a surviving replica (never the local buffer, whose declared
// ranges may hold not-yet-pushed transaction updates) while pushes
// continue against the live mirrors. Writes that land during the copy
// are recorded as dirty ranges by the data path; phase 2 replays them
// in catch-up epochs, shrinking the delta without taking the topology
// write lock. Phase 3 takes the write lock once, drains the last dirty
// ranges, covers regions created or freed mid-copy, and atomically
// swaps the fully caught-up replacement into the dead mirror's slot.
package netram

import (
	"fmt"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/ics-forth/perseas/internal/flight"
	"github.com/ics-forth/perseas/internal/trace"
	"github.com/ics-forth/perseas/internal/transport"
)

// maxCatchUpEpochs bounds the lock-free catch-up rounds a rebuild runs
// before it takes the topology write lock for the final drain. Each
// epoch copies what the previous one left dirty, so under any workload
// that pushes slower than the rebuild copies, the delta shrinks
// geometrically; the bound only matters when pushes outrun the copy.
const maxCatchUpEpochs = 8

// RebuildProgress is a snapshot of an in-flight rebuild, delivered to
// the observer after every copied chunk.
type RebuildProgress struct {
	// Region names the region the chunk belongs to.
	Region string
	// CopiedBytes is the total payload written to the replacement so
	// far, across all regions and epochs.
	CopiedBytes uint64
	// Epoch is 0 during the bulk copy and counts catch-up rounds from 1.
	Epoch int
}

// MirrorName reports mirror i's label (for diagnostics and health
// displays).
func (c *Client) MirrorName(i int) string {
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	if i < 0 || i >= len(c.mirrors) {
		return fmt.Sprintf("mirror-%d", i)
	}
	return c.mirrors[i].Name
}

// ProbeMirror checks mirror i's liveness using the transport's
// lightweight out-of-band probe when it has one (no virtual-time
// charge, so a failure detector heartbeating every interval cannot
// shift a reproduced figure) and a full Ping otherwise.
func (c *Client) ProbeMirror(i int) error {
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	if i < 0 || i >= len(c.mirrors) {
		return fmt.Errorf("netram: no mirror %d", i)
	}
	if p, ok := c.mirrors[i].T.(transport.Prober); ok {
		return p.Probe()
	}
	return c.mirrors[i].T.Ping()
}

// MarkMirrorDown fences mirror i off the data path before its failure
// would be discovered by a push — the failure detector's confirmation
// that the node is dead.
func (c *Client) MarkMirrorDown(i int) error {
	if i < 0 || i >= c.Mirrors() {
		return fmt.Errorf("netram: no mirror %d", i)
	}
	c.markDown(i)
	return nil
}

// Rebuilding reports which slot an online rebuild is currently
// replacing, if any.
func (c *Client) Rebuilding() (slot int, active bool) {
	c.stateMu.Lock()
	defer c.stateMu.Unlock()
	return c.rebuildSlot, c.rebuildSlot >= 0
}

// RebuildMirror replaces mirror i with the replacement m through an
// online catch-up copy: region contents stream from a surviving replica
// while transactions keep committing, and only the final delta is
// drained under the topology write lock. On success the replacement
// occupies slot i, receives every subsequent push, and the old
// transport is closed. On failure the client is unchanged (still
// degraded, slot i down) and the segments allocated on the replacement
// are released. onProgress, when non-nil, observes every copied chunk.
func (c *Client) RebuildMirror(i int, m Mirror, onProgress func(RebuildProgress)) error {
	if m.T == nil {
		return fmt.Errorf("netram: replacement mirror %q has no transport", m.Name)
	}
	if err := m.T.Ping(); err != nil {
		return fmt.Errorf("netram: replacement mirror %s unreachable: %w", m.Name, err)
	}

	// Claim the slot, fence it off the data path, and switch on
	// dirty-range tracking before the bulk copy starts reading.
	c.topoMu.Lock()
	if i < 0 || i >= len(c.mirrors) {
		c.topoMu.Unlock()
		return fmt.Errorf("netram: no mirror %d", i)
	}
	c.stateMu.Lock()
	if c.rebuildSlot >= 0 {
		c.stateMu.Unlock()
		c.topoMu.Unlock()
		return ErrRebuildInProgress
	}
	c.rebuildSlot = i
	if !c.down[i] {
		c.down[i] = true
		c.metrics.Degradations.Inc()
	}
	c.stateMu.Unlock()
	c.dirtyMu.Lock()
	c.dirty = make(map[string][]Range)
	c.dirtyMu.Unlock()
	c.tracking.Store(true)
	// Quorum stragglers queued before tracking switched on would write to
	// the survivors without being recorded as dirty, so the bulk copy
	// could read a stale survivor byte and never revisit it. Drain them
	// while the write lock still blocks new dispatches: anything enqueued
	// after this point reclaims with tracking on and lands in the dirty
	// set.
	c.drainCatchUp()
	snapshot := append([]*Region(nil), c.regions...)
	c.topoMu.Unlock()

	built := make(map[string]transport.SegmentHandle)
	var copied uint64
	// The whole rebuild is one infrastructure span tree: the root covers
	// the three phases, children record each phase's copied bytes.
	root := c.tracer.Start(trace.LayerNetram, "rebuild_mirror")
	abort := func(err error) error {
		root.EndN(copied)
		c.tracking.Store(false)
		c.dirtyMu.Lock()
		c.dirty = nil
		c.dirtyMu.Unlock()
		// Best-effort: leave nothing allocated on the replacement.
		for _, h := range built {
			_ = m.T.Free(h.ID)
		}
		c.stateMu.Lock()
		c.rebuildSlot = -1
		c.stateMu.Unlock()
		return err
	}

	// Phase 1 — bulk copy. Each chunk holds the topology read lock only
	// for its survivor read, so pushes interleave freely.
	c.flight.Record(flight.RebuildPhase, "netram", "bulk_copy", uint64(i))
	bulk := root.Child(trace.LayerNetram, "bulk_copy")
	for _, r := range snapshot {
		h, err := exportOnReplacement(m, r.Name, r.Size())
		if err != nil {
			return abort(fmt.Errorf("netram: rebuild export %q on %s: %w", r.Name, m.Name, err))
		}
		built[r.Name] = h
		gone, err := c.rebuildCopy(m, h, r, 0, r.Size(), i, false, &copied, 0, onProgress)
		if err != nil {
			return abort(err)
		}
		if gone {
			// Freed mid-copy; drop the half-filled segment.
			_ = m.T.Free(h.ID)
			delete(built, r.Name)
		}
	}

	bulk.EndN(copied)

	// Phase 2 — catch-up epochs: replay what the data path dirtied
	// while the previous round ran, still without blocking pushes.
	c.flight.Record(flight.RebuildPhase, "netram", "catchup_epochs", uint64(i))
	for epoch := 1; epoch <= maxCatchUpEpochs; epoch++ {
		batch := c.swapDirty()
		if len(batch) == 0 {
			break
		}
		ep := root.Child(trace.LayerNetram, "catchup_epoch")
		before := copied
		if err := c.drainBatch(m, built, batch, i, false, &copied, epoch, onProgress); err != nil {
			return abort(err)
		}
		ep.EndN(copied - before)
	}

	// Phase 3 — stop the world once, briefly: drain the final delta,
	// cover regions born or freed during the copy, and swap.
	c.topoMu.Lock()
	defer c.topoMu.Unlock()
	// In-flight quorum stragglers may still be writing survivors; their
	// dirty records only land when the last worker reclaims the call, so
	// wait for them before taking the final dirty snapshot.
	c.drainCatchUp()
	c.flight.Record(flight.RebuildPhase, "netram", "final_drain", uint64(i))
	fin := root.Child(trace.LayerNetram, "final_drain")
	finBase := copied
	c.tracking.Store(false)
	if batch := c.swapDirty(); len(batch) != 0 {
		if err := c.drainBatch(m, built, batch, i, true, &copied, maxCatchUpEpochs+1, onProgress); err != nil {
			return abort(err)
		}
	}
	live := make(map[string]*Region, len(c.regions))
	for _, r := range c.regions {
		live[r.Name] = r
	}
	for _, r := range c.regions {
		if _, ok := built[r.Name]; ok {
			continue
		}
		h, err := exportOnReplacement(m, r.Name, r.Size())
		if err != nil {
			return abort(fmt.Errorf("netram: rebuild export %q on %s: %w", r.Name, m.Name, err))
		}
		built[r.Name] = h
		if _, err := c.rebuildCopy(m, h, r, 0, r.Size(), i, true, &copied, maxCatchUpEpochs+1, onProgress); err != nil {
			return abort(err)
		}
	}
	for name, h := range built {
		if _, ok := live[name]; !ok {
			_ = m.T.Free(h.ID)
			delete(built, name)
		}
	}

	// The atomic swap: from the data path's point of view the dead node
	// vanishes and the fully caught-up replacement appears in its slot
	// in one topology transition.
	old := c.mirrors[i]
	c.mirrors[i] = m
	for _, r := range c.regions {
		r.handles[i] = built[r.Name]
	}
	c.stateMu.Lock()
	c.down[i] = false
	c.rebuildSlot = -1
	c.stateMu.Unlock()
	c.dirtyMu.Lock()
	c.dirty = nil
	c.dirtyMu.Unlock()
	c.metrics.Rebuilds.Inc()
	// The topology just changed; the last recorded fan-out spread is no
	// longer meaningful.
	c.straggler.Store(0)
	fin.EndN(copied - finBase)
	root.EndN(copied)
	c.flight.Record(flight.RebuildPhase, "netram", "complete", uint64(i))
	_ = old.T.Close()
	return nil
}

// recordDirty appends one pushed wire range to the rebuild's dirty set.
// Called by the data path (under the topology read lock, after the
// mirror writes landed) while tracking is on.
func (c *Client) recordDirty(name string, off, n uint64) {
	if n == 0 {
		return
	}
	c.dirtyMu.Lock()
	if c.dirty != nil {
		c.dirty[name] = append(c.dirty[name], Range{Offset: off, Length: n})
	}
	c.dirtyMu.Unlock()
}

// swapDirty takes the accumulated dirty set, leaving a fresh one for
// the next epoch.
func (c *Client) swapDirty() map[string][]Range {
	c.dirtyMu.Lock()
	defer c.dirtyMu.Unlock()
	out := c.dirty
	if len(out) == 0 {
		return nil
	}
	c.dirty = make(map[string][]Range)
	return out
}

// drainBatch re-copies one epoch's dirty ranges onto the replacement,
// in deterministic region order.
func (c *Client) drainBatch(m Mirror, built map[string]transport.SegmentHandle, batch map[string][]Range, skip int, locked bool, copied *uint64, epoch int, onProgress func(RebuildProgress)) error {
	names := make([]string, 0, len(batch))
	for name := range batch {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h, ok := built[name]
		if !ok {
			continue // born after the snapshot; phase 3 copies it in full
		}
		r := c.regionByName(name, locked)
		if r == nil {
			continue // freed meanwhile; phase 3 drops its segment
		}
		for _, rg := range Coalesce(batch[name]) {
			gone, err := c.rebuildCopy(m, h, r, rg.Offset, rg.Length, skip, locked, copied, epoch, onProgress)
			if err != nil {
				return err
			}
			if gone {
				break
			}
		}
	}
	return nil
}

// regionByName finds a live region; locked indicates the caller already
// holds the topology write lock.
func (c *Client) regionByName(name string, locked bool) *Region {
	if !locked {
		c.topoMu.RLock()
		defer c.topoMu.RUnlock()
	}
	for _, r := range c.regions {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// rebuildCopy copies [off,off+n) of r from surviving replicas onto the
// replacement segment h, in chunks of at most readChunk bytes. With
// locked false each chunk takes the topology read lock only for its
// survivor read, so a multi-gigabyte copy never blocks a push for more
// than one chunk. At pipeline depth 1 (the default) chunks move in a
// strictly sequential read-then-write loop from the first survivor; at
// depth n >= 2 up to n chunk reads stay in flight, striped round-robin
// across the survivors, while completed chunks write to the
// replacement — the read of chunk N+1 overlaps the write of chunk N.
// gone=true reports the region was freed mid-copy.
func (c *Client) rebuildCopy(m Mirror, h transport.SegmentHandle, r *Region, off, n uint64, skip int, locked bool, copied *uint64, epoch int, onProgress func(RebuildProgress)) (bool, error) {
	nChunks := int((n + c.readChunk - 1) / c.readChunk)
	if c.rebuildPipeline > 1 && nChunks > 1 {
		return c.rebuildCopyPipelined(m, h, r, off, n, nChunks, skip, locked, copied, epoch, onProgress)
	}
	for done := uint64(0); done < n; {
		step := n - done
		if step > c.readChunk {
			step = c.readChunk
		}
		read := func() ([]byte, bool, error) {
			if !locked {
				c.topoMu.RLock()
				defer c.topoMu.RUnlock()
			}
			return c.survivorReadLocked(r, skip, off+done, step, 0)
		}
		data, gone, err := read()
		if err != nil {
			return false, err
		}
		if gone {
			return true, nil
		}
		if err := m.T.Write(h.ID, off+done, data); err != nil {
			return false, fmt.Errorf("netram: rebuild write %q to %s: %w", r.Name, m.Name, err)
		}
		done += step
		*copied += step
		c.metrics.RebuildBytes.Add(step)
		if onProgress != nil {
			onProgress(RebuildProgress{Region: r.Name, CopiedBytes: *copied, Epoch: epoch})
		}
	}
	return false, nil
}

// rebuildChunk is one chunk moving through the pipelined rebuild copy.
type rebuildChunk struct {
	off  uint64
	data []byte
	gone bool
	err  error
}

// rebuildCopyPipelined is rebuildCopy's read-ahead path: pipeline-depth
// reader goroutines pull chunk indices, read each chunk from its
// round-robin survivor (taking the topology read lock per chunk exactly
// like the sequential path, so the dirty-epoch discipline is
// unchanged), and the caller's goroutine writes completed chunks to the
// replacement. Chunks are disjoint, so completion order does not
// matter; a failed or gone chunk stops the readers at their next pull.
func (c *Client) rebuildCopyPipelined(m Mirror, h transport.SegmentHandle, r *Region, off, n uint64, nChunks, skip int, locked bool, copied *uint64, epoch int, onProgress func(RebuildProgress)) (bool, error) {
	depth := c.rebuildPipeline
	if depth > nChunks {
		depth = nChunks
	}
	var next atomic.Int64
	var stop atomic.Bool
	results := make(chan rebuildChunk, depth)
	var wg sync.WaitGroup
	for w := 0; w < depth; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ci := int(next.Add(1)) - 1
				if ci >= nChunks || stop.Load() {
					return
				}
				chunkOff := off + uint64(ci)*c.readChunk
				step := off + n - chunkOff
				if step > c.readChunk {
					step = c.readChunk
				}
				read := func() ([]byte, bool, error) {
					if !locked {
						c.topoMu.RLock()
						defer c.topoMu.RUnlock()
					}
					return c.survivorReadLocked(r, skip, chunkOff, step, ci)
				}
				data, gone, err := read()
				results <- rebuildChunk{off: chunkOff, data: data, gone: gone, err: err}
				if gone || err != nil {
					return
				}
			}
		}()
	}
	go func() { wg.Wait(); close(results) }()

	var firstErr error
	gone := false
	for ch := range results {
		if firstErr != nil || gone {
			continue // draining after failure
		}
		switch {
		case ch.err != nil:
			firstErr = ch.err
			stop.Store(true)
		case ch.gone:
			gone = true
			stop.Store(true)
		default:
			if err := m.T.Write(h.ID, ch.off, ch.data); err != nil {
				firstErr = fmt.Errorf("netram: rebuild write %q to %s: %w", r.Name, m.Name, err)
				stop.Store(true)
				continue
			}
			step := uint64(len(ch.data))
			*copied += step
			c.metrics.RebuildBytes.Add(step)
			if onProgress != nil {
				onProgress(RebuildProgress{Region: r.Name, CopiedBytes: *copied, Epoch: epoch})
			}
		}
	}
	return gone, firstErr
}

// survivorReadLocked reads [off,off+n) of r from a live replica other
// than the slot being rebuilt, with the topology lock held by the
// caller. rot rotates the starting replica among the survivors — the
// pipelined copy passes the chunk index so consecutive chunks read
// from different nodes — and the remaining survivors serve as
// fallbacks in order; rot 0 reproduces the historical first-survivor
// choice. gone=true reports the region is no longer live.
func (c *Client) survivorReadLocked(r *Region, skip int, off, n uint64, rot int) ([]byte, bool, error) {
	alive := false
	for _, reg := range c.regions {
		if reg == r {
			alive = true
			break
		}
	}
	if !alive {
		return nil, true, nil
	}
	var candidates []int
	for j := range c.mirrors {
		if j == skip || c.isDown(j) || r.handles[j].ID == 0 {
			continue
		}
		candidates = append(candidates, j)
	}
	var lastErr error
	for a := 0; a < len(candidates); a++ {
		j := candidates[(rot+a)%len(candidates)]
		data, err := c.mirrors[j].T.Read(r.handles[j].ID, off, uint32(n))
		if err != nil {
			lastErr = err
			continue
		}
		if uint64(len(data)) != n {
			lastErr = fmt.Errorf("netram: short read from mirror %s: got %d of %d bytes",
				c.mirrors[j].Name, len(data), n)
			continue
		}
		c.metrics.RebuildSourceBytes[j].Add(n)
		return data, false, nil
	}
	if lastErr == nil {
		lastErr = ErrAllMirrorsDown
	}
	return nil, false, fmt.Errorf("netram: rebuild source for %q: %w", r.Name, lastErr)
}

// RebuildPipeline reports the configured bulk-copy read-ahead depth.
func (c *Client) RebuildPipeline() int {
	if c.rebuildPipeline > 1 {
		return c.rebuildPipeline
	}
	return 1
}

// RebuildSourceBytes reports how many bytes each mirror slot has served
// as the read side of rebuild copies — with striped reads the evidence
// that the load spread across the survivors.
func (c *Client) RebuildSourceBytes() []uint64 {
	out := make([]uint64, len(c.metrics.RebuildSourceBytes))
	for i := range out {
		out[i] = c.metrics.RebuildSourceBytes[i].Load()
	}
	return out
}

// exportOnReplacement maps name on the replacement node: reusing a
// same-size segment the node already holds (a former mirror rejoining
// as a spare), else allocating afresh.
func exportOnReplacement(m Mirror, name string, size uint64) (transport.SegmentHandle, error) {
	h, err := m.T.Connect(name)
	if err == nil && h.Size == size {
		return h, nil
	}
	if err == nil {
		// Stale leftover of the wrong size — replace it.
		if dc, ok := m.T.(transport.Disconnector); ok {
			_ = dc.Disconnect(h.ID)
		}
		if err := m.T.Free(h.ID); err != nil {
			return transport.SegmentHandle{}, err
		}
	}
	return m.T.Malloc(name, size)
}

// Coalesce sorts rs in place and merges overlapping or adjacent
// ranges, returning the shortened prefix. The rebuild's catch-up
// drain uses it so a hot region's many small dirty pushes land as few
// large copies; the commit path uses the same idea (on its own range
// representation) to emulate the SCI adapter's store-gathering.
// Allocation-free: sorting is slices.SortFunc and merging reuses rs.
func Coalesce(rs []Range) []Range {
	if len(rs) <= 1 {
		return rs
	}
	slices.SortFunc(rs, func(a, b Range) int {
		switch {
		case a.Offset < b.Offset:
			return -1
		case a.Offset > b.Offset:
			return 1
		default:
			return 0
		}
	})
	out := rs[:1]
	for _, r := range rs[1:] {
		last := &out[len(out)-1]
		if r.Offset <= last.Offset+last.Length {
			if end := r.Offset + r.Length; end > last.Offset+last.Length {
				last.Length = end - last.Offset
			}
			continue
		}
		out = append(out, r)
	}
	return out
}
