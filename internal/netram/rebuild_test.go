package netram

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/sci"
	"github.com/ics-forth/perseas/internal/transport"
)

// spareMirror builds a fresh node on the rig's clock, ready to hand to
// RebuildMirror as a replacement.
func spareMirror(t *testing.T, r *rig, label string) (Mirror, *memserver.Server) {
	t.Helper()
	srv := memserver.New(memserver.WithLabel(label))
	tr, err := transport.NewInProc(srv, sci.DefaultParams(), r.clock)
	if err != nil {
		t.Fatal(err)
	}
	return Mirror{Name: label, T: tr}, srv
}

func TestRebuildMirrorBasic(t *testing.T) {
	r := newRig(t, 2)
	reg, err := r.client.Malloc("db", 8192)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reg.Local {
		reg.Local[i] = byte(i * 7)
	}
	if err := r.client.PushAll(reg); err != nil {
		t.Fatal(err)
	}

	// Mirror 1 dies for good; the detector fences it and rebuilds onto a
	// spare.
	r.servers[1].Crash()
	if err := r.client.MarkMirrorDown(1); err != nil {
		t.Fatal(err)
	}
	if r.client.Live() != 1 {
		t.Fatalf("live = %d, want 1", r.client.Live())
	}

	spare, spareSrv := spareMirror(t, r, "spare0")
	var last RebuildProgress
	if err := r.client.RebuildMirror(1, spare, func(p RebuildProgress) { last = p }); err != nil {
		t.Fatal(err)
	}
	if r.client.Live() != 2 {
		t.Fatalf("live after rebuild = %d, want 2", r.client.Live())
	}
	if got := r.client.MirrorName(1); got != "spare0" {
		t.Fatalf("slot 1 is %q, want spare0", got)
	}
	if last.CopiedBytes < 8192 {
		t.Fatalf("progress reported %d copied bytes, want >= 8192", last.CopiedBytes)
	}
	if got := r.client.Metrics().Rebuilds.Load(); got != 1 {
		t.Fatalf("rebuilds counter = %d, want 1", got)
	}

	// The spare holds the bytes, and subsequent pushes reach it.
	if mm, err := r.client.VerifyAll(); err != nil || len(mm) != 0 {
		t.Fatalf("verify after rebuild: %v %v", mm, err)
	}
	copy(reg.Local[4000:], []byte("post-rebuild"))
	if err := r.client.Push(reg, 4000, 12); err != nil {
		t.Fatal(err)
	}
	got, err := spareSrv.Read(reg.Handle(1).ID, 4000, 12)
	if err != nil || !bytes.Equal(got, []byte("post-rebuild")) {
		t.Fatalf("spare read: %q %v", got, err)
	}
}

func TestRebuildCatchesConcurrentPushes(t *testing.T) {
	r := newRig(t, 3)
	reg, err := r.client.Malloc("hot", 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.client.PushAll(reg); err != nil {
		t.Fatal(err)
	}
	r.servers[2].Crash()
	if err := r.client.MarkMirrorDown(2); err != nil {
		t.Fatal(err)
	}

	// Hammer pushes from another goroutine for the whole duration of
	// the rebuild; the dirty-range catch-up must fold every one of them
	// into the spare.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		seq := byte(1)
		for {
			select {
			case <-stop:
				return
			default:
			}
			off := uint64(seq) * 256 % (1<<16 - 64)
			for i := uint64(0); i < 64; i++ {
				reg.Local[off+i] = seq
			}
			if err := r.client.Push(reg, off, 64); err != nil {
				t.Errorf("concurrent push: %v", err)
				return
			}
			seq++
		}
	}()

	spare, _ := spareMirror(t, r, "spareC")
	err = r.client.RebuildMirror(2, spare, nil)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if mm, verr := r.client.VerifyAll(); verr != nil || len(mm) != 0 {
		t.Fatalf("verify after concurrent rebuild: %v %v", mm, verr)
	}
}

func TestRebuildBlocksTopologyChanges(t *testing.T) {
	r := newRig(t, 2)
	if _, err := r.client.Malloc("seg", 16384); err != nil {
		t.Fatal(err)
	}
	r.servers[1].Crash()
	_ = r.client.MarkMirrorDown(1)

	spare, _ := spareMirror(t, r, "spareB")
	second, _ := spareMirror(t, r, "spareB2")
	checked := false
	err := r.client.RebuildMirror(1, spare, func(p RebuildProgress) {
		if checked || p.Epoch != 0 {
			return // phase 3 runs under the topology lock; stay out
		}
		checked = true
		if slot, active := r.client.Rebuilding(); !active || slot != 1 {
			t.Errorf("Rebuilding() = %d,%v mid-rebuild", slot, active)
		}
		if err := r.client.Revive(1); !errors.Is(err, ErrRebuildInProgress) {
			t.Errorf("Revive during rebuild: %v", err)
		}
		if err := r.client.ReplaceMirror(1, second); !errors.Is(err, ErrRebuildInProgress) {
			t.Errorf("ReplaceMirror during rebuild: %v", err)
		}
		if err := r.client.RebuildMirror(1, second, nil); !errors.Is(err, ErrRebuildInProgress) {
			t.Errorf("second RebuildMirror: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !checked {
		t.Fatal("progress callback never ran")
	}
	if _, active := r.client.Rebuilding(); active {
		t.Fatal("rebuild still marked active after return")
	}
}

func TestRebuildCoversRegionsBornAndFreedMidCopy(t *testing.T) {
	r := newRig(t, 2)
	keep, err := r.client.Malloc("keep", 16384)
	if err != nil {
		t.Fatal(err)
	}
	doomed, err := r.client.Malloc("doomed", 16384)
	if err != nil {
		t.Fatal(err)
	}
	for i := range keep.Local {
		keep.Local[i] = 0xAB
	}
	if err := r.client.PushAll(keep); err != nil {
		t.Fatal(err)
	}
	if err := r.client.PushAll(doomed); err != nil {
		t.Fatal(err)
	}
	r.servers[1].Crash()
	_ = r.client.MarkMirrorDown(1)

	spare, spareSrv := spareMirror(t, r, "spareD")
	var once sync.Once
	var born *Region
	err = r.client.RebuildMirror(1, spare, func(p RebuildProgress) {
		if p.Epoch != 0 {
			return
		}
		once.Do(func() {
			// Mid-copy, one region dies and another is born.
			if err := r.client.Free(doomed); err != nil {
				t.Errorf("free mid-rebuild: %v", err)
			}
			nr, err := r.client.Malloc("born", 8192)
			if err != nil {
				t.Errorf("malloc mid-rebuild: %v", err)
				return
			}
			for i := range nr.Local {
				nr.Local[i] = 0xCD
			}
			if err := r.client.PushAll(nr); err != nil {
				t.Errorf("push mid-rebuild: %v", err)
			}
			born = nr
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if born == nil {
		t.Fatal("mid-rebuild malloc never happened")
	}
	if mm, verr := r.client.VerifyAll(); verr != nil || len(mm) != 0 {
		t.Fatalf("verify: %v %v", mm, verr)
	}
	// The spare holds exactly the live regions: keep and born.
	segs := spareSrv.List()
	names := make(map[string]bool, len(segs))
	for _, s := range segs {
		names[s.Name] = true
	}
	if !names["keep"] || !names["born"] || names["doomed"] {
		t.Fatalf("spare segments after rebuild: %v", names)
	}
	got, err := spareSrv.Read(born.Handle(1).ID, 0, 16)
	if err != nil || !bytes.Equal(got, bytes.Repeat([]byte{0xCD}, 16)) {
		t.Fatalf("born region on spare: %q %v", got, err)
	}
}

func TestRebuildFailureLeavesClientDegradedButUsable(t *testing.T) {
	r := newRig(t, 2)
	reg, err := r.client.Malloc("db", 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.client.PushAll(reg); err != nil {
		t.Fatal(err)
	}
	r.servers[1].Crash()
	_ = r.client.MarkMirrorDown(1)

	// A spare that is itself dead: the rebuild must fail up front.
	deadSpare, deadSrv := spareMirror(t, r, "deadSpare")
	deadSrv.Crash()
	if err := r.client.RebuildMirror(1, deadSpare, nil); err == nil {
		t.Fatal("rebuild onto dead spare succeeded")
	}
	if _, active := r.client.Rebuilding(); active {
		t.Fatal("failed rebuild left the slot claimed")
	}

	// Pushes still work degraded, and a later rebuild with a live spare
	// succeeds.
	copy(reg.Local, []byte("still here"))
	if err := r.client.Push(reg, 0, 10); err != nil {
		t.Fatal(err)
	}
	spare, _ := spareMirror(t, r, "goodSpare")
	if err := r.client.RebuildMirror(1, spare, nil); err != nil {
		t.Fatal(err)
	}
	if mm, verr := r.client.VerifyAll(); verr != nil || len(mm) != 0 {
		t.Fatalf("verify: %v %v", mm, verr)
	}
}

func TestProbeMirrorChargesNoVirtualTime(t *testing.T) {
	r := newRig(t, 2)
	before := r.clock.Now()
	if err := r.client.ProbeMirror(0); err != nil {
		t.Fatal(err)
	}
	if after := r.clock.Now(); after != before {
		t.Fatalf("probe advanced the simulated clock by %v", after-before)
	}
	r.servers[1].Crash()
	if err := r.client.ProbeMirror(1); err == nil {
		t.Fatal("probe of crashed mirror succeeded")
	}
	if after := r.clock.Now(); after != before {
		t.Fatal("failed probe advanced the simulated clock")
	}
	if err := r.client.ProbeMirror(7); err == nil {
		t.Fatal("probe of bogus slot succeeded")
	}
}

func TestMergeRanges(t *testing.T) {
	cases := []struct {
		in, want []Range
	}{
		{nil, nil},
		{[]Range{{0, 10}}, []Range{{0, 10}}},
		// Adjacent coalesce.
		{[]Range{{0, 10}, {10, 5}}, []Range{{0, 15}}},
		// Overlap, out of order.
		{[]Range{{20, 10}, {0, 25}}, []Range{{0, 30}}},
		// Contained.
		{[]Range{{0, 100}, {10, 5}}, []Range{{0, 100}}},
		// Disjoint stay apart.
		{[]Range{{50, 5}, {0, 10}}, []Range{{0, 10}, {50, 5}}},
	}
	for i, c := range cases {
		got := Coalesce(append([]Range(nil), c.in...))
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("case %d: merge(%v) = %v, want %v", i, c.in, got, c.want)
		}
	}
}
