// Package netram implements the client side of the paper's reliable
// network RAM: a layer of main memory mirrored in the memories of one or
// more remote workstations, reachable through three major operations —
// remote malloc, remote free and remote memory copy — plus the
// reconnection call used after a crash.
//
// A Region couples a local buffer with one exported segment per mirror
// node. Push propagates a modified byte range from the local buffer to
// every mirror using the optimised sci_memcpy strategy the paper
// describes: copies of 32 bytes or more are expanded to whole 64-byte
// regions aligned on 64-byte boundaries, so the PCI-SCI card transmits
// full 64-byte packets and its store-gathering and buffer-streaming
// machinery works at peak efficiency.
package netram

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/ics-forth/perseas/internal/flight"
	"github.com/ics-forth/perseas/internal/obs"
	"github.com/ics-forth/perseas/internal/sci"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/trace"
	"github.com/ics-forth/perseas/internal/transport"
)

// Errors returned by the client.
var (
	// ErrNoMirrors is returned when a client is built without mirrors.
	ErrNoMirrors = errors.New("netram: at least one mirror is required")
	// ErrBadRange is returned for accesses outside a region.
	ErrBadRange = errors.New("netram: range outside region")
	// ErrAllMirrorsDown is returned when no mirror can service a fetch.
	ErrAllMirrorsDown = errors.New("netram: all mirrors are down")
	// ErrRebuildInProgress is returned by topology operations that
	// cannot run while an online mirror rebuild is in flight.
	ErrRebuildInProgress = errors.New("netram: mirror rebuild in progress")
)

// DefaultAlignThreshold is the copy size, in bytes, at and above which
// sci_memcpy expands the copy to whole 64-byte aligned regions (Section 4
// of the paper).
const DefaultAlignThreshold = 32

// maxReadChunk bounds a single remote read. Fetch and Verify split
// larger transfers into chunks of this size, so regions past 4 GiB are
// read back correctly (a single Read carries a uint32 length) and no
// transfer ever exceeds the wire protocol's frame limit.
const maxReadChunk = 16 << 20

// Mirror names one remote node and the transport reaching it.
type Mirror struct {
	// Name labels the node in errors ("remote-0", a hostname, ...).
	Name string
	// T is the connection to the node's memory server.
	T transport.Transport
}

// Stats aggregates client traffic. It is a plain comparable snapshot
// assembled from the client's lock-free metrics.
type Stats struct {
	// Pushes counts Push calls; PushedBytes counts the payload bytes
	// the caller asked to propagate.
	Pushes      uint64
	PushedBytes uint64
	// WireBytes counts bytes actually sent per mirror write, including
	// alignment expansion.
	WireBytes uint64
	// Fetches counts recovery reads.
	Fetches      uint64
	FetchedBytes uint64
}

// Metrics are the client's lock-free observability primitives: the
// legacy Stats counters plus latency histograms and failure-handling
// counters. Latencies are measured as clock deltas — on a simulated
// clock they report modelled time without ever advancing it.
type Metrics struct {
	Pushes       obs.Counter
	PushedBytes  obs.Counter
	WireBytes    obs.Counter
	Fetches      obs.Counter
	FetchedBytes obs.Counter
	// PushLatency / FetchLatency are nanoseconds per successful
	// Push/PushMany and Fetch call.
	PushLatency  obs.Histogram
	FetchLatency obs.Histogram
	// Retries counts write attempts replayed after a transient failure
	// on a mirror that still answered pings.
	Retries obs.Counter
	// Degradations counts mirrors marked down (each transition counts
	// once; Revive re-arms the mirror).
	Degradations obs.Counter
	// Rebuilds counts completed mirror rebuilds; RebuildBytes counts
	// the bytes copied onto replacement nodes (bulk copy plus catch-up
	// epochs).
	Rebuilds     obs.Counter
	RebuildBytes obs.Counter
	// MirrorPush holds one latency histogram per mirror slot, so a
	// slow replica is visible individually instead of hiding in the
	// aggregate PushLatency.
	MirrorPush []obs.Histogram
	// Fanouts counts pushes dispatched through the parallel fan-out
	// (two or more eligible mirrors, parallel path enabled).
	Fanouts obs.Counter
	// AckDepth is the number of mirror acks a quorum-mode push had
	// collected when it returned to the caller (all-ack pushes do not
	// observe it).
	AckDepth obs.Histogram
	// CatchUpOverflows counts quorum writes dropped because a mirror's
	// bounded catch-up queue was full; each drop degrades the mirror and
	// hands it to the guardian's revive/rebuild path.
	CatchUpOverflows obs.Counter
	// RebuildSourceBytes holds one counter per mirror slot: the bytes
	// that slot served as the read side of rebuild copies. With striped
	// rebuild reads the load spreads across the survivors; these
	// counters are the evidence.
	RebuildSourceBytes []obs.Counter
}

// Client is a reliable-network-RAM client bound to a fixed mirror set.
// It is safe for concurrent use: data-path operations (Push, PushMany,
// Fetch) of different transactions interleave freely, while topology
// changes (Malloc, Free, Connect, Revive, ReplaceMirror) exclude them.
type Client struct {
	alignThreshold int
	alignDisabled  bool
	readChunk      uint64
	// clock timestamps the latency histograms; it is only ever read
	// (Now), never advanced, so instrumentation cannot perturb a
	// simulated run. Defaults to the wall clock.
	clock simclock.Clock
	// tracer records infrastructure spans (rebuild phases); nil disables.
	// Set once during wiring, before the data path runs.
	tracer *trace.Recorder
	// flight records mirror anomalies (degradations, push retries,
	// catch-up overflows); nil disables. Set once during wiring.
	flight *flight.Recorder

	// topoMu guards the mirror set, the region list and every region's
	// handles. Data-path operations hold the read lock for their whole
	// duration, so a reintegration never swaps a mirror out from under an
	// in-flight push.
	topoMu  sync.RWMutex
	mirrors []Mirror
	// regions tracks every live region in creation order so a repaired
	// mirror can be reintegrated with full contents.
	regions []*Region

	// stateMu guards the health flags, which the data path updates
	// while holding only the topology read lock. Traffic counters live
	// in metrics and are lock-free.
	stateMu sync.Mutex
	// down[i] marks mirror i as failed: the paper's design keeps the
	// database available through the surviving mirrors, so pushes skip
	// dead nodes instead of stalling the application.
	down []bool
	// rebuildSlot is the index of the mirror an online rebuild is
	// replacing (-1 when idle), guarded by stateMu. One rebuild runs at
	// a time; Revive and ReplaceMirror refuse while it is in flight.
	rebuildSlot int
	metrics     Metrics

	// While a rebuild's bulk copy runs, tracking is on and the data
	// path records every pushed wire range in dirty, so the catch-up
	// epochs replay exactly what changed without ever blocking pushes.
	// The flag is checked lock-free on the push fast path.
	tracking atomic.Bool
	dirtyMu  sync.Mutex
	dirty    map[string][]Range

	// Parallel fan-out state (fanout.go): one long-lived sender
	// goroutine per mirror slot, started lazily on the first push that
	// can go parallel; callPool recycles per-dispatch latches and
	// scratch so the steady-state push path allocates nothing.
	// rebuildPipeline is the read-ahead depth of RebuildMirror's bulk
	// copy: 1 (the default) runs the exact historical read-then-write
	// loop from the first survivor; n >= 2 keeps up to n chunk reads in
	// flight, striped round-robin across the surviving replicas, while
	// chunks write to the replacement.
	rebuildPipeline int

	serialFanout bool
	workerOnce   sync.Once
	senders      []chan *fanoutJob
	closed       atomic.Bool
	callPool     sync.Pool
	// straggler is the last observed fan-out spread: slowest minus
	// fastest mirror completion, in clock nanoseconds.
	straggler atomic.Uint64

	// Quorum commit state. quorumW > 0 makes Push/PushMany return to
	// the caller after quorumW mirror acks; the remaining mirrors (the
	// stragglers) complete asynchronously on their sender workers. The
	// per-mirror pending counters account every dispatched quorum job:
	// pendEnq[i] counts jobs handed to mirror i's sender, pendDone[i]
	// counts jobs that finished (acked, failed, or dropped because the
	// mirror went down). pendCond wakes drainers when a job retires.
	quorumW  int
	pendMu   sync.Mutex
	pendCond *sync.Cond
	pendEnq  []uint64
	pendDone []uint64
}

// Option configures a Client.
type Option func(*Client)

// WithAlignThreshold overrides the copy size at which alignment expansion
// kicks in.
func WithAlignThreshold(n int) Option {
	return func(c *Client) { c.alignThreshold = n }
}

// WithoutAlignment disables the 64-byte expansion entirely (used by the
// ablation benchmarks).
func WithoutAlignment() Option {
	return func(c *Client) { c.alignDisabled = true }
}

// WithReadChunk overrides the maximum bytes moved per remote read
// during Fetch and Verify. Tests use a tiny chunk to exercise the
// splitting without gigabyte regions.
func WithReadChunk(n uint64) Option {
	return func(c *Client) {
		if n > 0 {
			c.readChunk = n
		}
	}
}

// WithRebuildPipeline sets the rebuild bulk copy's read-ahead depth: up
// to n chunk reads stay in flight, striped round-robin across the
// surviving replicas, while completed chunks write to the replacement.
// 1 (and any n below it) keeps the historical strictly sequential
// read-then-write loop from the first survivor.
func WithRebuildPipeline(n int) Option {
	return func(c *Client) {
		if n > 1 {
			c.rebuildPipeline = n
		}
	}
}

// WithSerialFanout disables the parallel mirror fan-out: every push
// writes its mirrors one after the other on the caller's goroutine, the
// pre-parallelisation behaviour. Used by the fan-out benchmark's
// baseline arm and available as an escape hatch.
func WithSerialFanout() Option {
	return func(c *Client) { c.serialFanout = true }
}

// WithQuorum makes a push durable at w mirror acks instead of all of
// them: the caller returns as soon as w mirrors confirmed the write,
// while the stragglers complete asynchronously on their per-mirror
// sender workers (a bounded catch-up queue; a mirror that falls more
// than the queue length behind is degraded and handed to the guardian's
// revive/rebuild path). w is validated against the mirror count by
// NewClient; w equal to the mirror count is the all-ack default and
// leaves every code path exactly as before.
func WithQuorum(w int) Option {
	return func(c *Client) { c.quorumW = w }
}

// NewClient builds a client replicating to the given mirrors.
func NewClient(mirrors []Mirror, opts ...Option) (*Client, error) {
	if len(mirrors) == 0 {
		return nil, ErrNoMirrors
	}
	for i, m := range mirrors {
		if m.T == nil {
			return nil, fmt.Errorf("netram: mirror %d (%s) has no transport", i, m.Name)
		}
	}
	c := &Client{
		mirrors:        append([]Mirror(nil), mirrors...),
		alignThreshold: DefaultAlignThreshold,
		readChunk:      maxReadChunk,
		clock:          simclock.NewWall(),
		down:           make([]bool, len(mirrors)),
		rebuildSlot:    -1,
	}
	c.metrics.MirrorPush = make([]obs.Histogram, len(mirrors))
	c.metrics.RebuildSourceBytes = make([]obs.Counter, len(mirrors))
	c.rebuildPipeline = 1
	for _, o := range opts {
		o(c)
	}
	if c.alignThreshold < 1 {
		c.alignThreshold = 1
	}
	if c.readChunk > maxReadChunk {
		// A single Read carries a uint32 length and one wire frame;
		// never exceed what both can hold.
		c.readChunk = maxReadChunk
	}
	if c.quorumW < 0 || c.quorumW > len(mirrors) {
		return nil, fmt.Errorf("netram: quorum %d outside 1..%d mirrors", c.quorumW, len(mirrors))
	}
	if c.quorumW == len(mirrors) {
		// w == n is the all-ack default; normalising to zero keeps the
		// historical (and figure-pinned) push paths untouched.
		c.quorumW = 0
	}
	if c.quorumW > 0 && c.serialFanout {
		return nil, errors.New("netram: WithQuorum requires the parallel fan-out (drop WithSerialFanout)")
	}
	if c.quorumW > 0 {
		c.pendCond = sync.NewCond(&c.pendMu)
		c.pendEnq = make([]uint64, len(mirrors))
		c.pendDone = make([]uint64, len(mirrors))
	}
	return c, nil
}

// Quorum reports the configured ack quorum; zero means all-ack (the
// default, including clients built with WithQuorum(n) for n mirrors).
func (c *Client) Quorum() int { return c.quorumW }

// CatchUpPending reports how many quorum writes mirror i has been
// handed but not yet completed — the mirror's catch-up lag in writes.
// Always zero on all-ack clients.
func (c *Client) CatchUpPending(i int) int {
	if c.quorumW == 0 || i < 0 || i >= len(c.mirrors) {
		return 0
	}
	c.pendMu.Lock()
	defer c.pendMu.Unlock()
	return int(c.pendEnq[i] - c.pendDone[i])
}

// WaitCatchUp blocks until every mirror has completed every quorum
// write dispatched so far — the repair-before-read barrier: after it
// returns (and absent concurrent pushes) no live mirror lags a
// quorum-committed write. A no-op on all-ack clients.
func (c *Client) WaitCatchUp() {
	if c.quorumW == 0 {
		return
	}
	c.drainCatchUp()
}

// drainCatchUp waits for the per-mirror pending counters to level.
// Callers that hold topoMu (read or write) rely on stragglers never
// taking the topology lock: a queued job needs only its captured Mirror
// value and segment handle to finish, so draining under topoMu.Lock
// cannot deadlock — and it is exactly what makes topology mutations
// safe, because no straggler can still reference the old topology once
// the drain returns.
func (c *Client) drainCatchUp() {
	if c.quorumW == 0 {
		return
	}
	c.pendMu.Lock()
	defer c.pendMu.Unlock()
	for {
		settled := true
		for i := range c.pendEnq {
			if c.pendDone[i] < c.pendEnq[i] {
				settled = false
				break
			}
		}
		if settled {
			return
		}
		c.pendCond.Wait()
	}
}

// Fence captures the set of quorum writes in flight at creation time;
// Done reports whether all of them have since completed. The zero value
// (and every fence from an all-ack client) is trivially done, so fence
// checks cost nothing on the default path.
type Fence struct {
	c      *Client
	target []uint64
}

// Fence snapshots the current per-mirror dispatch counts.
func (c *Client) Fence() Fence {
	if c.quorumW == 0 {
		return Fence{}
	}
	c.pendMu.Lock()
	defer c.pendMu.Unlock()
	return Fence{c: c, target: append([]uint64(nil), c.pendEnq...)}
}

// Done reports whether every write the fence covers has completed.
func (f Fence) Done() bool {
	if f.c == nil {
		return true
	}
	f.c.pendMu.Lock()
	defer f.c.pendMu.Unlock()
	for i, t := range f.target {
		if f.c.pendDone[i] < t {
			return false
		}
	}
	return true
}

// SetClock points the latency histograms at clk (the library's clock,
// so simulated runs report modelled time). The clock is only read.
func (c *Client) SetClock(clk simclock.Clock) {
	if clk != nil {
		c.clock = clk
	}
}

// SetTracer attaches a span recorder for rebuild-phase infrastructure
// spans. Call during wiring, before traffic flows; every recorder
// method is nil-safe, so a nil tracer simply records nothing.
func (c *Client) SetTracer(rec *trace.Recorder) { c.tracer = rec }

// SetFlight attaches a flight recorder for mirror anomalies. Call
// during wiring, before traffic flows; nil records nothing.
func (c *Client) SetFlight(r *flight.Recorder) { c.flight = r }

// Mirrors reports the number of mirror nodes.
func (c *Client) Mirrors() int { return len(c.mirrors) }

// Live reports how many mirrors are still considered healthy.
func (c *Client) Live() int {
	c.stateMu.Lock()
	defer c.stateMu.Unlock()
	n := 0
	for _, d := range c.down {
		if !d {
			n++
		}
	}
	return n
}

// MirrorDown reports mirror i's health flag, for status snapshots.
func (c *Client) MirrorDown(i int) bool { return c.isDown(i) }

// isDown reads mirror i's health flag.
func (c *Client) isDown(i int) bool {
	c.stateMu.Lock()
	defer c.stateMu.Unlock()
	return c.down[i]
}

// markDown records mirror i as failed; only the first transition per
// outage counts as a degradation event. The flight event carries the
// slot, not the name: markDown runs under stateMu only, and the mirror
// set may be mid-swap under topoMu.
func (c *Client) markDown(i int) {
	c.stateMu.Lock()
	defer c.stateMu.Unlock()
	if !c.down[i] {
		c.down[i] = true
		c.metrics.Degradations.Inc()
		c.flight.Record(flight.MirrorDegrade, "netram", "mirror marked down", uint64(i))
	}
}

// Stats returns a snapshot of the traffic counters.
func (c *Client) Stats() Stats {
	return Stats{
		Pushes:       c.metrics.Pushes.Load(),
		PushedBytes:  c.metrics.PushedBytes.Load(),
		WireBytes:    c.metrics.WireBytes.Load(),
		Fetches:      c.metrics.Fetches.Load(),
		FetchedBytes: c.metrics.FetchedBytes.Load(),
	}
}

// Metrics exposes the client's lock-free counters and histograms.
func (c *Client) Metrics() *Metrics { return &c.metrics }

// RegisterMetrics registers the client's counters on reg.
func (c *Client) RegisterMetrics(reg *obs.Registry) {
	c.RegisterMetricsPrefixed(reg, "perseas_netram")
}

// RegisterMetricsPrefixed registers the same series under a caller-chosen
// name prefix, so the clients of several shards can share one registry
// without colliding.
func (c *Client) RegisterMetricsPrefixed(reg *obs.Registry, prefix string) {
	m := &c.metrics
	reg.RegisterCounter(prefix+"_pushes_total", "Push/PushMany range propagations", &m.Pushes)
	reg.RegisterCounter(prefix+"_pushed_bytes_total", "payload bytes pushed", &m.PushedBytes)
	reg.RegisterCounter(prefix+"_wire_bytes_total", "bytes sent including alignment expansion", &m.WireBytes)
	reg.RegisterCounter(prefix+"_fetches_total", "recovery reads", &m.Fetches)
	reg.RegisterCounter(prefix+"_fetched_bytes_total", "bytes fetched back", &m.FetchedBytes)
	reg.RegisterHistogram(prefix+"_push_latency_ns", "ns per successful push", &m.PushLatency)
	reg.RegisterHistogram(prefix+"_fetch_latency_ns", "ns per successful fetch", &m.FetchLatency)
	reg.RegisterCounter(prefix+"_retries_total", "writes replayed after transient failures", &m.Retries)
	reg.RegisterCounter(prefix+"_degradations_total", "mirrors marked down", &m.Degradations)
	reg.RegisterCounter(prefix+"_rebuilds_total", "completed mirror rebuilds", &m.Rebuilds)
	reg.RegisterCounter(prefix+"_rebuild_bytes_total", "bytes re-replicated onto replacement mirrors", &m.RebuildBytes)
	reg.RegisterGauge(prefix+"_live_mirrors", "mirrors considered healthy", func() uint64 {
		return uint64(c.Live())
	})
	reg.RegisterCounter(prefix+"_fanouts_total", "pushes dispatched through the parallel mirror fan-out", &m.Fanouts)
	reg.RegisterGauge(prefix+"_fanout_straggler_ns", "last fan-out spread: slowest minus fastest mirror completion", c.straggler.Load)
	reg.RegisterGauge(prefix+"_quorum_width", "configured ack quorum (0 = all-ack)", func() uint64 {
		return uint64(c.quorumW)
	})
	reg.RegisterHistogram(prefix+"_push_ack_depth", "mirror acks collected when a quorum push returned", &m.AckDepth)
	reg.RegisterCounter(prefix+"_catchup_overflows_total", "quorum writes dropped on a full per-mirror catch-up queue", &m.CatchUpOverflows)
	reg.RegisterGauge(prefix+"_rebuild_pipeline_depth", "rebuild bulk-copy read-ahead depth (1 = sequential)", func() uint64 {
		return uint64(c.RebuildPipeline())
	})
	for i := range m.MirrorPush {
		reg.RegisterHistogram(
			fmt.Sprintf("%s_mirror%d_push_latency_ns", prefix, i),
			fmt.Sprintf("ns per push on mirror slot %d", i),
			&m.MirrorPush[i])
		i := i
		reg.RegisterGauge(
			fmt.Sprintf("%s_mirror%d_catchup_pending", prefix, i),
			fmt.Sprintf("quorum writes mirror slot %d has not yet completed", i),
			func() uint64 { return uint64(c.CatchUpPending(i)) })
		reg.RegisterCounter(
			fmt.Sprintf("%s_mirror%d_rebuild_source_bytes_total", prefix, i),
			fmt.Sprintf("bytes mirror slot %d served as a rebuild read source", i),
			&m.RebuildSourceBytes[i])
	}
}

// ResetStats zeroes the traffic counters and latency histograms.
func (c *Client) ResetStats() {
	c.metrics.Pushes.Reset()
	c.metrics.PushedBytes.Reset()
	c.metrics.WireBytes.Reset()
	c.metrics.Fetches.Reset()
	c.metrics.FetchedBytes.Reset()
	c.metrics.PushLatency.Reset()
	c.metrics.FetchLatency.Reset()
	for i := range c.metrics.MirrorPush {
		c.metrics.MirrorPush[i].Reset()
	}
}

// Region is a mirrored memory region: a local buffer plus one remote
// segment per mirror, all sharing the region's name.
type Region struct {
	// Name is the reconnection name of the region's remote segments.
	Name string
	// Local is the local copy the application reads and writes.
	Local []byte

	handles []transport.SegmentHandle
}

// Size returns the region length in bytes.
func (r *Region) Size() uint64 { return uint64(len(r.Local)) }

// Handle returns the remote segment handle on mirror i (for tests and
// tooling).
func (r *Region) Handle(i int) transport.SegmentHandle { return r.handles[i] }

// Malloc allocates a local buffer of the given size and exports an
// equivalent segment on every mirror (the paper's remote malloc).
func (c *Client) Malloc(name string, size uint64) (*Region, error) {
	if size == 0 {
		return nil, errors.New("netram: size must be positive")
	}
	c.topoMu.Lock()
	defer c.topoMu.Unlock()
	r := &Region{
		Name:    name,
		Local:   make([]byte, size),
		handles: make([]transport.SegmentHandle, len(c.mirrors)),
	}
	exported := 0
	for i, m := range c.mirrors {
		if c.isDown(i) {
			// A dead mirror cannot export the segment now; it receives
			// the region when it is revived or rebuilt, both of which
			// re-export every live region.
			continue
		}
		h, err := m.T.Malloc(name, size)
		if err != nil {
			// Unwind partial allocations so a failed malloc leaks
			// nothing on the mirrors that did succeed.
			for j := 0; j < i; j++ {
				if r.handles[j].ID != 0 {
					_ = c.mirrors[j].T.Free(r.handles[j].ID)
				}
			}
			return nil, fmt.Errorf("netram: malloc on mirror %s: %w", m.Name, err)
		}
		r.handles[i] = h
		exported++
	}
	if exported == 0 {
		return nil, fmt.Errorf("netram: malloc %q: %w", name, ErrAllMirrorsDown)
	}
	c.regions = append(c.regions, r)
	return r, nil
}

// Free releases the region's remote segments (the paper's remote free).
// The local buffer is left to the garbage collector.
func (c *Client) Free(r *Region) error {
	c.topoMu.Lock()
	defer c.topoMu.Unlock()
	// Stragglers may still hold r's segment handles; let them finish
	// before the segments are released underneath them.
	c.drainCatchUp()
	for i, reg := range c.regions {
		if reg == r {
			c.regions = append(c.regions[:i], c.regions[i+1:]...)
			break
		}
	}
	var firstErr error
	for i, m := range c.mirrors {
		if r.handles[i].ID == 0 || c.isDown(i) {
			// Nothing mapped there, or the node is dead — its segments
			// died with it (or are dropped when it is rebuilt).
			continue
		}
		if err := m.T.Free(r.handles[i].ID); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("netram: free on mirror %s: %w", m.Name, err)
		}
	}
	return firstErr
}

// Push propagates r.Local[offset:offset+n] to every mirror — the paper's
// remote memory copy. Copies of alignThreshold bytes or more are expanded
// to whole 64-byte aligned regions (clamped to the region bounds), which
// is safe because the bytes around a modified range are identical in the
// local buffer and its mirrors.
func (c *Client) Push(r *Region, offset, n uint64) error {
	return c.pushOpts(r, offset, n, nil, false)
}

// PushAcked is Push joined on every eligible mirror even in quorum
// mode. Metadata whose latest version recovery must be able to read
// from any single mirror — the directory, decision records — takes
// this path; on all-ack clients it is identical to Push.
func (c *Client) PushAcked(r *Region, offset, n uint64) error {
	return c.pushOpts(r, offset, n, nil, true)
}

// PushTraced is Push recording one netram span per mirror write into
// the transaction's trace (tt may be nil; every TxTrace method is
// nil-safe, so the untraced path costs nothing extra).
func (c *Client) PushTraced(r *Region, offset, n uint64, tt *trace.TxTrace) error {
	return c.pushOpts(r, offset, n, tt, false)
}

// pushOpts is the shared Push body; allAck forces the full join even on
// quorum clients.
func (c *Client) pushOpts(r *Region, offset, n uint64, tt *trace.TxTrace, allAck bool) error {
	if err := r.checkRange(offset, n); err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	start := c.clock.Now()
	lo, hi := offset, offset+n
	if !c.alignDisabled && n >= uint64(c.alignThreshold) {
		lo, hi = expandEdges(lo, hi, r.Size())
	}
	data := r.Local[lo:hi]
	call := c.getCall()
	// releaseCall (via the last reference) records the wire range in the
	// rebuild's dirty set after the mirror writes land — including error
	// paths, where some survivors may already hold the bytes. Synchronous
	// pushes release the last reference right here, under the topology
	// read lock, so a catch-up epoch can never consume the range before
	// the surviving replica has it; quorum pushes with stragglers release
	// it from the last finishing worker instead.
	defer c.releaseCall(call)
	if c.tracking.Load() {
		call.trackName = r.Name
		call.trackOff, call.trackLen = lo, hi-lo
	}
	pushed, err := c.pushMirrors(r, call, lo, data, nil, uint64(len(data)), tt, allAck)
	if err != nil {
		return err
	}
	c.metrics.Pushes.Inc()
	c.metrics.PushedBytes.Add(n)
	c.metrics.WireBytes.Add(uint64(len(data)) * uint64(pushed))
	c.metrics.PushLatency.ObserveDuration(c.clock.Now() - start)
	return nil
}

// writeWithRetry performs one mirror write, classifying failures: if the
// node is gone (its ping fails too) the mirror is degraded and the
// write is reported as absorbed by degradation; if the node is alive the
// failure may be a transient hiccup, so the write is retried once before
// the error is surfaced to the caller. Runs on the caller's goroutine
// for the serial path and inside a sender worker for the parallel one,
// so it must not touch a TxTrace — it reports retried instead.
func (c *Client) writeWithRetry(m Mirror, slot int, seg uint32, offset uint64, data []byte) (retried bool, err error) {
	err = m.T.Write(seg, offset, data)
	if err == nil {
		return false, nil
	}
	if pingErr := m.T.Ping(); pingErr != nil {
		c.markDown(slot)
		return false, err
	}
	// The node answers pings: transient failure — one retry.
	c.metrics.Retries.Inc()
	c.flight.Record(flight.MirrorRetry, "netram", m.Name, uint64(slot))
	if retryErr := m.T.Write(seg, offset, data); retryErr != nil {
		// Surface the retry's error — it is the failure the mirror is
		// failing with NOW; the first attempt rides along for context.
		return true, fmt.Errorf("%w (first attempt: %v)", retryErr, err)
	}
	return true, nil
}

// PushAll propagates the entire region, used by InitRemoteDB.
func (c *Client) PushAll(r *Region) error {
	return c.Push(r, 0, r.Size())
}

// PushAllAcked propagates the entire region joined on every eligible
// mirror (see PushAcked).
func (c *Client) PushAllAcked(r *Region) error {
	return c.PushAcked(r, 0, r.Size())
}

// Range is one (offset, length) pair for PushMany.
type Range struct {
	Offset uint64
	Length uint64
}

// PushMany propagates several ranges of r to every mirror, using one
// batched exchange per mirror when its transport supports it (one TCP
// round trip per commit instead of one per range). Alignment expansion
// applies per range exactly as in Push; on the SCI model the cost is
// identical to pushing the ranges one by one.
func (c *Client) PushMany(r *Region, ranges []Range) error {
	return c.PushManyTraced(r, ranges, nil)
}

// PushManyTraced is PushMany recording one netram span per mirror
// exchange into the transaction's trace (tt may be nil).
func (c *Client) PushManyTraced(r *Region, ranges []Range, tt *trace.TxTrace) error {
	return c.pushManyOpts(r, ranges, tt, false)
}

// PushManyAckedTraced is PushManyTraced joined on every mirror even on a
// quorum client. Cross-shard prepares use it: the coordinator's decision
// record is the commit point for prepared data, and recovery driven by a
// decision must find that data on whichever mirrors it can still reach.
// On an all-ack client it is identical to PushManyTraced.
func (c *Client) PushManyAckedTraced(r *Region, ranges []Range, tt *trace.TxTrace) error {
	return c.pushManyOpts(r, ranges, tt, true)
}

func (c *Client) pushManyOpts(r *Region, ranges []Range, tt *trace.TxTrace, allAck bool) error {
	for _, rg := range ranges {
		if err := r.checkRange(rg.Offset, rg.Length); err != nil {
			return err
		}
	}
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	start := c.clock.Now()
	call := c.getCall()
	// As in Push: the last call reference records the dirty spans after
	// the writes land (the span scratch is only reclaimed after that).
	defer c.releaseCall(call)
	// Materialise the expanded wire ranges once; per-mirror only the
	// segment id differs. The scratch slice rides on the pooled call.
	spans := call.spans[:0]
	var payload, wireBytes uint64
	for _, rg := range ranges {
		if rg.Length == 0 {
			continue
		}
		lo, hi := rg.Offset, rg.Offset+rg.Length
		if !c.alignDisabled && rg.Length >= uint64(c.alignThreshold) {
			lo, hi = expandEdges(lo, hi, r.Size())
		}
		spans = append(spans, wireSpan{lo, hi})
		payload += rg.Length
		wireBytes += hi - lo
	}
	call.spans = spans
	if len(spans) == 0 {
		return nil
	}
	if c.tracking.Load() {
		call.trackName = r.Name
		call.trackSpans = spans
	}
	pushed, err := c.pushMirrors(r, call, 0, nil, spans, wireBytes, tt, allAck)
	if err != nil {
		return err
	}
	c.metrics.Pushes.Add(uint64(len(spans)))
	c.metrics.PushedBytes.Add(payload)
	c.metrics.WireBytes.Add(wireBytes * uint64(pushed))
	c.metrics.PushLatency.ObserveDuration(c.clock.Now() - start)
	return nil
}

// Fetch reads n bytes at offset from the first mirror that answers,
// in declaration order. Used during recovery, when the local buffer's
// content is gone. Transfers larger than the read chunk are split into
// several remote reads, so regions past 4 GiB (or the wire frame
// limit) arrive intact instead of silently truncated.
func (c *Client) Fetch(r *Region, offset, n uint64) ([]byte, error) {
	return c.FetchTraced(r, offset, n, nil)
}

// FetchTraced is Fetch recording one netram span per mirror attempt
// into the transaction's trace (tt may be nil).
func (c *Client) FetchTraced(r *Region, offset, n uint64, tt *trace.TxTrace) ([]byte, error) {
	if err := r.checkRange(offset, n); err != nil {
		return nil, err
	}
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	start := c.clock.Now()
	var lastErr error
	for i, m := range c.mirrors {
		if r.handles[i].ID == 0 {
			continue
		}
		sp := tt.Start(trace.LayerNetram, m.Name)
		data, err := c.readChunked(m, r.handles[i].ID, offset, n)
		if err != nil {
			sp.End()
			lastErr = fmt.Errorf("netram: fetch from mirror %s: %w", m.Name, err)
			continue
		}
		sp.EndN(n)
		c.metrics.Fetches.Inc()
		c.metrics.FetchedBytes.Add(n)
		c.metrics.FetchLatency.ObserveDuration(c.clock.Now() - start)
		return data, nil
	}
	if lastErr == nil {
		lastErr = ErrAllMirrorsDown
	}
	return nil, fmt.Errorf("%w (last: %v)", ErrAllMirrorsDown, lastErr)
}

// readChunked reads n bytes at offset from one mirror, splitting the
// transfer into reads of at most c.readChunk bytes. A mid-transfer
// failure fails the whole read — the caller falls over to the next
// mirror, never stitching two nodes' bytes together.
func (c *Client) readChunked(m Mirror, seg uint32, offset, n uint64) ([]byte, error) {
	if n <= c.readChunk {
		return m.T.Read(seg, offset, uint32(n))
	}
	out := make([]byte, 0, n)
	for done := uint64(0); done < n; {
		step := n - done
		if step > c.readChunk {
			step = c.readChunk
		}
		data, err := m.T.Read(seg, offset+done, uint32(step))
		if err != nil {
			return nil, err
		}
		if uint64(len(data)) != step {
			return nil, fmt.Errorf("netram: short read from mirror %s: got %d of %d bytes",
				m.Name, len(data), step)
		}
		out = append(out, data...)
		done += step
	}
	return out, nil
}

// FetchInto restores r.Local[offset:offset+n] from the mirrors.
func (c *Client) FetchInto(r *Region, offset, n uint64) error {
	data, err := c.Fetch(r, offset, n)
	if err != nil {
		return err
	}
	copy(r.Local[offset:], data)
	return nil
}

// FetchMirror reads n bytes at offset from mirror i specifically,
// bypassing the first-answering fallback. Quorum recovery uses it to
// compare replicas and to repair lagging mirrors from a quorum-current
// one; the mirror is read even when marked down, since a degraded
// replica's (stale but prefix-consistent) state is exactly what the
// reconciliation needs to see.
func (c *Client) FetchMirror(i int, r *Region, offset, n uint64) ([]byte, error) {
	if err := r.checkRange(offset, n); err != nil {
		return nil, err
	}
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	if i < 0 || i >= len(c.mirrors) {
		return nil, fmt.Errorf("netram: no mirror %d", i)
	}
	if r.handles[i].ID == 0 {
		return nil, fmt.Errorf("netram: region %q not mapped on mirror %s", r.Name, c.mirrors[i].Name)
	}
	data, err := c.readChunked(c.mirrors[i], r.handles[i].ID, offset, n)
	if err != nil {
		return nil, fmt.Errorf("netram: fetch from mirror %s: %w", c.mirrors[i].Name, err)
	}
	c.metrics.Fetches.Inc()
	c.metrics.FetchedBytes.Add(n)
	return data, nil
}

// Connect re-maps an existing named region after the local node crashed:
// it allocates a fresh local buffer and connects to the surviving remote
// segments by name (the paper's sci_connect_segment). The local buffer is
// NOT filled; recovery decides what to copy back.
func (c *Client) Connect(name string) (*Region, error) {
	c.topoMu.Lock()
	defer c.topoMu.Unlock()
	r, err := c.connectRegion(name)
	if err != nil {
		return nil, err
	}
	c.regions = append(c.regions, r)
	return r, nil
}

// connectRegion maps name on every reachable mirror and allocates the
// local buffer, without touching the region list. The caller holds the
// topology write lock; ConnectMany runs several of these concurrently
// (only c.mirrors is read, and transports are safe for concurrent use)
// and appends the results in input order itself.
func (c *Client) connectRegion(name string) (*Region, error) {
	r := &Region{Name: name, handles: make([]transport.SegmentHandle, len(c.mirrors))}
	var size uint64
	connected := 0
	for i, m := range c.mirrors {
		h, err := m.T.Connect(name)
		if err != nil {
			continue
		}
		r.handles[i] = h
		if size == 0 {
			size = h.Size
		} else if h.Size != size {
			// Release every reference taken so far (including this
			// mirror's) before erroring, so the abandoned region leaves
			// no handles attached anywhere.
			c.releaseHandles(r, i+1)
			return nil, fmt.Errorf("netram: mirror %s disagrees on size of %q: %d vs %d",
				m.Name, name, h.Size, size)
		}
		connected++
	}
	if connected == 0 {
		return nil, fmt.Errorf("netram: connect %q: %w", name, ErrAllMirrorsDown)
	}
	r.Local = make([]byte, size)
	return r, nil
}

// releaseHandles disconnects the references r holds on the first n
// mirrors; best-effort, for error-path cleanup.
func (c *Client) releaseHandles(r *Region, n int) {
	for j := 0; j < n && j < len(c.mirrors); j++ {
		if r.handles[j].ID == 0 {
			continue
		}
		if dc, ok := c.mirrors[j].T.(transport.Disconnector); ok {
			_ = dc.Disconnect(r.handles[j].ID)
		}
		r.handles[j] = transport.SegmentHandle{}
	}
}

// Revive reintegrates mirror i after its node was repaired: every live
// region is re-exported there (reconnecting when the node still holds
// the segment, re-allocating when its memory was lost) and refilled from
// the local copy, after which the mirror resumes receiving pushes. This
// restores the replication degree the paper's reliability argument rests
// on — data are lost only if all mirrors fail in the same interval, so a
// repaired node should rejoin as soon as it is back.
func (c *Client) Revive(i int) error {
	c.topoMu.Lock()
	defer c.topoMu.Unlock()
	if err := c.checkNoRebuild(); err != nil {
		return err
	}
	// Quorum stragglers still hold the old topology's Mirror values and
	// segment handles; let them land before the resync reads r.Local, so
	// the revived mirror's full copy includes every completed write.
	c.drainCatchUp()
	if err := c.reviveLocked(i); err != nil {
		return err
	}
	// The fan-out spread changed shape with the topology; drop the stale
	// sample rather than reporting the pre-revive gap forever.
	c.straggler.Store(0)
	return nil
}

// checkNoRebuild refuses a topology change while an online rebuild is
// replacing a mirror: the rebuild owns its slot, and a concurrent swap
// of any slot would invalidate the surviving-replica copy in flight.
func (c *Client) checkNoRebuild() error {
	c.stateMu.Lock()
	defer c.stateMu.Unlock()
	if c.rebuildSlot >= 0 {
		return ErrRebuildInProgress
	}
	return nil
}

// reviveLocked is Revive with the topology lock already held.
func (c *Client) reviveLocked(i int) error {
	if i < 0 || i >= len(c.mirrors) {
		return fmt.Errorf("netram: no mirror %d", i)
	}
	m := c.mirrors[i]
	if err := m.T.Ping(); err != nil {
		return fmt.Errorf("netram: mirror %s not back yet: %w", m.Name, err)
	}
	for _, r := range c.regions {
		h, err := m.T.Connect(r.Name)
		if err != nil || h.Size != r.Size() {
			// The node lost (or never had) the segment: export afresh.
			if h.ID != 0 && h.Size != r.Size() {
				_ = m.T.Free(h.ID)
			}
			h, err = m.T.Malloc(r.Name, r.Size())
			if err != nil {
				return fmt.Errorf("netram: re-export %q on %s: %w", r.Name, m.Name, err)
			}
		}
		if err := m.T.Write(h.ID, 0, r.Local); err != nil {
			return fmt.Errorf("netram: resync %q to %s: %w", r.Name, m.Name, err)
		}
		r.handles[i] = h
	}
	c.stateMu.Lock()
	c.down[i] = false
	c.stateMu.Unlock()
	return nil
}

// ReplaceMirror substitutes a brand-new node for mirror i — the case
// where a workstation leaves the pool for good (its owner reclaimed it,
// or the hardware died) and a different machine donates its idle memory
// instead. Every live region is exported on the newcomer and filled from
// the local copies; the old transport is closed.
func (c *Client) ReplaceMirror(i int, m Mirror) error {
	c.topoMu.Lock()
	defer c.topoMu.Unlock()
	if err := c.checkNoRebuild(); err != nil {
		return err
	}
	if i < 0 || i >= len(c.mirrors) {
		return fmt.Errorf("netram: no mirror %d", i)
	}
	if m.T == nil {
		return fmt.Errorf("netram: replacement mirror %q has no transport", m.Name)
	}
	if err := m.T.Ping(); err != nil {
		return fmt.Errorf("netram: replacement mirror %s unreachable: %w", m.Name, err)
	}
	// No straggler may still write through the old transport once it is
	// swapped out and closed.
	c.drainCatchUp()
	old := c.mirrors[i]
	c.mirrors[i] = m
	c.markDown(i) // fence pushes off the slot while it refills
	for _, r := range c.regions {
		r.handles[i] = transport.SegmentHandle{}
	}
	if err := c.reviveLocked(i); err != nil {
		// Roll the slot back so the client stays usable degraded.
		c.mirrors[i] = old
		return fmt.Errorf("netram: replacement resync failed: %w", err)
	}
	c.straggler.Store(0)
	_ = old.T.Close()
	return nil
}

// Mismatch describes one divergence Verify found.
type Mismatch struct {
	// Mirror names the diverging node.
	Mirror string
	// Region names the diverging region.
	Region string
	// Offset is the first differing byte.
	Offset uint64
}

// Error implements the error interface.
func (m Mismatch) Error() string {
	return fmt.Sprintf("netram: mirror %s diverges from local %q at byte %d",
		m.Mirror, m.Region, m.Offset)
}

// Verify audits a region: it fetches the full contents from every live
// mirror and compares them with the local copy, returning one Mismatch
// per diverging mirror. Intended for operational tooling and tests; it
// moves the whole region over the interconnect.
func (c *Client) Verify(r *Region) ([]Mismatch, error) {
	// Repair-before-read: a quorum-lagging mirror is not readable until
	// its catch-up queue drains, so the audit never reports (or worse,
	// trusts) a replica that is merely behind.
	c.WaitCatchUp()
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	return c.verifyLocked(r)
}

// VerifyAll audits every live region against every live mirror — the
// post-rebuild acceptance check that the restored replica set is
// byte-identical. Like Verify it moves each region's full contents over
// the interconnect once per mirror.
func (c *Client) VerifyAll() ([]Mismatch, error) {
	c.WaitCatchUp() // repair-before-read, as in Verify
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	var out []Mismatch
	for _, r := range c.regions {
		ms, err := c.verifyLocked(r)
		if err != nil {
			return out, err
		}
		out = append(out, ms...)
	}
	return out, nil
}

// verifyLocked is Verify's body, with the topology read lock held.
func (c *Client) verifyLocked(r *Region) ([]Mismatch, error) {
	var out []Mismatch
	checked := 0
	for i, m := range c.mirrors {
		if c.isDown(i) || r.handles[i].ID == 0 {
			continue
		}
		// Compare chunk by chunk so regions past 4 GiB (or the frame
		// limit) are audited in full instead of silently truncated.
		diverged := false
		for done := uint64(0); done < r.Size() && !diverged; {
			step := r.Size() - done
			if step > c.readChunk {
				step = c.readChunk
			}
			remote, err := m.T.Read(r.handles[i].ID, done, uint32(step))
			if err != nil {
				return nil, fmt.Errorf("netram: verify %q on %s: %w", r.Name, m.Name, err)
			}
			for off := range remote {
				if remote[off] != r.Local[done+uint64(off)] {
					out = append(out, Mismatch{Mirror: m.Name, Region: r.Name, Offset: done + uint64(off)})
					diverged = true
					break
				}
			}
			done += step
		}
		checked++
	}
	if checked == 0 {
		return nil, fmt.Errorf("netram: verify %q: %w", r.Name, ErrAllMirrorsDown)
	}
	return out, nil
}

// Ping checks that every mirror is alive, returning the first failure.
func (c *Client) Ping() error {
	c.topoMu.RLock()
	defer c.topoMu.RUnlock()
	for _, m := range c.mirrors {
		if err := m.T.Ping(); err != nil {
			return fmt.Errorf("netram: mirror %s: %w", m.Name, err)
		}
	}
	return nil
}

// expandEdges applies the optimised sci_memcpy strategy: a partially
// covered 64-byte edge chunk drains as a set of 16-byte packets, so when
// the copy touches three or more 16-byte slots of an edge chunk it is
// cheaper to widen the copy and send the whole chunk as one full 64-byte
// packet. Interior chunks are full either way. The widened bytes are
// identical on the local buffer and its mirrors, so the expansion never
// changes remote contents.
func expandEdges(lo, hi, size uint64) (uint64, uint64) {
	const slot = sci.SmallPacketSize
	if head := lo % sci.BufferSize; head != 0 {
		chunkEnd := sci.AlignDown(lo) + sci.BufferSize
		edgeHi := hi
		if edgeHi > chunkEnd {
			edgeHi = chunkEnd
		}
		slots := (edgeHi-1)/slot - lo/slot + 1
		if slots >= 3 {
			lo = sci.AlignDown(lo)
		}
	}
	if tail := hi % sci.BufferSize; tail != 0 && sci.AlignUp(hi) <= size {
		chunkStart := sci.AlignDown(hi - 1)
		edgeLo := lo
		if edgeLo < chunkStart {
			edgeLo = chunkStart
		}
		slots := (hi-1)/slot - edgeLo/slot + 1
		if slots >= 3 {
			hi = sci.AlignUp(hi)
		}
	}
	return lo, hi
}

func (r *Region) checkRange(offset, n uint64) error {
	if offset > r.Size() || n > r.Size()-offset {
		return fmt.Errorf("%w: [%d,+%d) in %d-byte region %q",
			ErrBadRange, offset, n, r.Size(), r.Name)
	}
	return nil
}
