// Parallel replication fan-out: Push and PushMany dispatch each
// mirror's write to a long-lived per-mirror sender worker and join on a
// completion latch, so the wall-clock cost of a commit over real
// transports is the slowest mirror, not the sum of all of them — the
// posted-write behaviour the paper gets for free from SCI
// store-gathering. Retry and degradation classification run inside the
// worker, so a flapping mirror's retry never delays a healthy one.
//
// On the simulated SCI clock nothing changes: SimClock.Advance is
// additive and commutative, so the total virtual time charged by N
// workers equals the sequential sum, and the dispatcher samples the
// clock only before dispatch and after the join — reproduced figures
// stay byte-identical.
package netram

import (
	"fmt"
	"sync"
	"time"

	"github.com/ics-forth/perseas/internal/trace"
	"github.com/ics-forth/perseas/internal/transport"
)

// wireSpan is one expanded (alignment-applied) wire range.
type wireSpan struct {
	lo, hi uint64
}

// fanoutJob is one mirror's share of a parallel push. The dispatcher
// fills it under the topology read lock (so the Mirror value cannot be
// swapped mid-flight), the slot's worker executes it, and the
// dispatcher reads the results back after the join.
type fanoutJob struct {
	wg   *sync.WaitGroup
	m    Mirror
	slot int
	seg  uint32

	// Single-write form (spans == nil): push data at off.
	off  uint64
	data []byte
	// Batch form: push local[s.lo:s.hi] for every span. writes is the
	// job's persistent scratch for the transport.BatchWrite conversion.
	spans  []wireSpan
	local  []byte
	writes []transport.BatchWrite

	// Results, valid after wg.Done.
	start, end time.Duration
	retried    bool
	err        error
}

// fanoutCall is the pooled per-dispatch state: the latch, one job per
// mirror slot, and the scratch slices the serial paths use. Pooling it
// keeps the steady-state commit path allocation-free.
type fanoutCall struct {
	wg     sync.WaitGroup
	jobs   []fanoutJob
	spans  []wireSpan
	writes []transport.BatchWrite
}

func (c *Client) getCall() *fanoutCall {
	call, _ := c.callPool.Get().(*fanoutCall)
	if call == nil {
		call = &fanoutCall{}
	}
	if len(call.jobs) < len(c.mirrors) {
		call.jobs = make([]fanoutJob, len(c.mirrors))
	}
	return call
}

func (c *Client) putCall(call *fanoutCall) {
	for i := range call.jobs {
		j := &call.jobs[i]
		j.data, j.local, j.spans = nil, nil, nil
		for k := range j.writes {
			j.writes[k] = transport.BatchWrite{}
		}
		j.err = nil
	}
	for k := range call.writes {
		call.writes[k] = transport.BatchWrite{}
	}
	call.spans = call.spans[:0]
	c.callPool.Put(call)
}

// startWorkers spawns one sender goroutine per mirror slot. Called at
// most once, lazily, on the first dispatch that can actually go
// parallel — single-mirror clients never pay for the goroutines.
func (c *Client) startWorkers() {
	c.senders = make([]chan *fanoutJob, len(c.mirrors))
	for i := range c.senders {
		ch := make(chan *fanoutJob, 4)
		c.senders[i] = ch
		go c.sender(ch)
	}
}

// sender executes jobs for one mirror slot in arrival order; a single
// worker per slot is what preserves per-mirror write ordering.
func (c *Client) sender(ch chan *fanoutJob) {
	for j := range ch {
		c.runJob(j)
		j.wg.Done()
	}
}

// runJob performs one mirror write (single or batch) with the standard
// retry-and-classify policy, timing it against the client clock.
func (c *Client) runJob(j *fanoutJob) {
	j.start = c.clock.Now()
	if j.spans == nil {
		j.retried, j.err = c.writeWithRetry(j.m, j.slot, j.seg, j.off, j.data)
	} else {
		j.retried, j.err = c.batchWithRetry(j.m, j.slot, j.seg, j.spans, j.local, &j.writes)
	}
	j.end = c.clock.Now()
}

// batchWithRetry pushes every span to one mirror — one batched exchange
// when the transport supports it — applying the same failure
// classification as writeWithRetry. The batch is atomic server-side, so
// a replay after a transient failure is idempotent.
func (c *Client) batchWithRetry(m Mirror, slot int, seg uint32, spans []wireSpan, local []byte, writes *[]transport.BatchWrite) (retried bool, err error) {
	attempt := func() error {
		if bw, ok := m.T.(transport.BatchWriter); ok {
			ws := (*writes)[:0]
			for _, s := range spans {
				ws = append(ws, transport.BatchWrite{Seg: seg, Offset: s.lo, Data: local[s.lo:s.hi]})
			}
			*writes = ws
			return bw.WriteBatch(ws)
		}
		for _, s := range spans {
			if err := m.T.Write(seg, s.lo, local[s.lo:s.hi]); err != nil {
				return err
			}
		}
		return nil
	}
	err = attempt()
	if err == nil {
		return false, nil
	}
	if pingErr := m.T.Ping(); pingErr != nil {
		c.markDown(slot)
		return false, err
	}
	c.metrics.Retries.Inc()
	if err2 := attempt(); err2 == nil {
		return true, nil
	}
	return true, err
}

// pushMirrors propagates one wire payload (single range, or a span
// batch) to every eligible mirror and aggregates the outcome with the
// same semantics the sequential loop had: an error on a mirror that
// still answers pings surfaces to the caller (lowest slot wins, for
// determinism), a mirror whose ping fails too is degraded and skipped,
// and zero successful mirrors is ErrAllMirrorsDown.
//
// Caller holds topoMu.RLock for the whole call, which is what lets the
// jobs capture Mirror values and segment handles without copies being
// swapped underneath, and what orders recordDirty after the join.
func (c *Client) pushMirrors(r *Region, call *fanoutCall, off uint64, data []byte, spans []wireSpan, wireBytes uint64, tt *trace.TxTrace) (int, error) {
	eligible := 0
	for i := range c.mirrors {
		if c.isDown(i) || r.handles[i].ID == 0 {
			continue
		}
		eligible++
	}
	if eligible == 0 {
		return 0, fmt.Errorf("netram: push %q: %w", r.Name, ErrAllMirrorsDown)
	}
	if eligible == 1 || c.serialFanout || c.closed.Load() {
		return c.pushSerial(r, call, off, data, spans, wireBytes, tt)
	}
	return c.pushParallel(r, call, off, data, spans, wireBytes, tt)
}

// pushSerial is the in-line path: the only eligible mirror (the common
// single-replica configuration), or every mirror in slot order when
// parallel dispatch is disabled. Matches the historical sequential
// semantics exactly, including stopping at the first alive-mirror
// error.
func (c *Client) pushSerial(r *Region, call *fanoutCall, off uint64, data []byte, spans []wireSpan, wireBytes uint64, tt *trace.TxTrace) (int, error) {
	pushed := 0
	for i := range c.mirrors {
		if c.isDown(i) || r.handles[i].ID == 0 {
			continue
		}
		m := c.mirrors[i]
		sp := tt.Start(trace.LayerNetram, m.Name)
		start := c.clock.Now()
		var retried bool
		var err error
		if spans == nil {
			retried, err = c.writeWithRetry(m, i, r.handles[i].ID, off, data)
		} else {
			retried, err = c.batchWithRetry(m, i, r.handles[i].ID, spans, r.Local, &call.writes)
		}
		if retried {
			tt.Event(trace.LayerNetram, "retry", uint64(i))
		}
		if err != nil {
			sp.End()
			if c.isDown(i) {
				continue // node degraded; stay available via the others
			}
			if spans == nil {
				return pushed, fmt.Errorf("netram: push to mirror %s: %w", m.Name, err)
			}
			return pushed, fmt.Errorf("netram: batch push to mirror %s: %w", m.Name, err)
		}
		c.metrics.MirrorPush[i].ObserveDuration(c.clock.Now() - start)
		sp.EndN(wireBytes)
		pushed++
	}
	if pushed == 0 {
		return 0, fmt.Errorf("netram: push %q: %w", r.Name, ErrAllMirrorsDown)
	}
	return pushed, nil
}

// pushParallel dispatches one job per eligible mirror to the sender
// workers and joins on the latch. Per-mirror intervals are appended to
// the trace after the join (TxTrace is goroutine-owned, so workers
// never touch it) under a "fanout" umbrella span.
func (c *Client) pushParallel(r *Region, call *fanoutCall, off uint64, data []byte, spans []wireSpan, wireBytes uint64, tt *trace.TxTrace) (int, error) {
	c.workerOnce.Do(c.startWorkers)
	fo := tt.Start(trace.LayerNetram, "fanout")
	dispatched := call.jobs[:0]
	for i := range c.mirrors {
		if c.isDown(i) || r.handles[i].ID == 0 {
			continue
		}
		j := &call.jobs[len(dispatched)]
		dispatched = call.jobs[:len(dispatched)+1]
		j.wg = &call.wg
		j.m = c.mirrors[i]
		j.slot = i
		j.seg = r.handles[i].ID
		j.off, j.data = off, data
		j.spans, j.local = spans, nil
		if spans != nil {
			j.local = r.Local
		}
		call.wg.Add(1)
		c.senders[i] <- j
	}
	call.wg.Wait()

	pushed := 0
	var firstErr error
	var firstName string
	var minEnd, maxEnd time.Duration
	for k := range dispatched {
		j := &dispatched[k]
		if j.retried {
			tt.Event(trace.LayerNetram, "retry", uint64(j.slot))
		}
		tt.Completed(trace.LayerNetram, j.m.Name, j.start, j.end-j.start, wireBytes)
		if j.err != nil {
			if !c.isDown(j.slot) && firstErr == nil {
				firstErr = j.err
				firstName = j.m.Name
			}
			continue
		}
		c.metrics.MirrorPush[j.slot].ObserveDuration(j.end - j.start)
		if pushed == 0 || j.end < minEnd {
			minEnd = j.end
		}
		if pushed == 0 || j.end > maxEnd {
			maxEnd = j.end
		}
		pushed++
	}
	fo.EndN(wireBytes)
	c.metrics.Fanouts.Inc()
	if pushed > 1 {
		// The straggler gap: how much longer the slowest mirror took
		// than the fastest — the wall-clock win over a sequential
		// fan-out is roughly the sum of these gaps.
		c.straggler.Store(uint64(maxEnd - minEnd))
	}
	if firstErr != nil {
		if spans == nil {
			return pushed, fmt.Errorf("netram: push to mirror %s: %w", firstName, firstErr)
		}
		return pushed, fmt.Errorf("netram: batch push to mirror %s: %w", firstName, firstErr)
	}
	if pushed == 0 {
		return 0, fmt.Errorf("netram: push %q: %w", r.Name, ErrAllMirrorsDown)
	}
	return pushed, nil
}

// Close stops the sender workers. Call once the data path is quiescent
// (no Push/PushMany in flight or following); a closed client degrades
// to the serial path if pushed again, it does not panic.
func (c *Client) Close() {
	c.topoMu.Lock()
	defer c.topoMu.Unlock()
	if c.closed.Swap(true) {
		return
	}
	for _, ch := range c.senders {
		close(ch)
	}
	c.senders = nil
}
