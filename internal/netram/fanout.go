// Parallel replication fan-out: Push and PushMany dispatch each
// mirror's write to a long-lived per-mirror sender worker and join on a
// completion latch, so the wall-clock cost of a commit over real
// transports is the slowest mirror, not the sum of all of them — the
// posted-write behaviour the paper gets for free from SCI
// store-gathering. Retry and degradation classification run inside the
// worker, so a flapping mirror's retry never delays a healthy one.
//
// On the simulated SCI clock nothing changes: SimClock.Advance is
// additive and commutative, so the total virtual time charged by N
// workers equals the sequential sum, and the dispatcher samples the
// clock only before dispatch and after the join — reproduced figures
// stay byte-identical.
package netram

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ics-forth/perseas/internal/flight"
	"github.com/ics-forth/perseas/internal/trace"
	"github.com/ics-forth/perseas/internal/transport"
)

// catchUpQueueLen bounds each mirror's sender channel on quorum
// clients: it is the per-mirror pending catch-up queue. A mirror that
// falls further behind than this is degraded (and its queued writes
// dropped), handing it to the guardian's revive/rebuild path rather
// than letting unbounded lag accumulate.
const catchUpQueueLen = 64

// errQuorumMirrorDown marks a queued quorum write dropped because its
// mirror was degraded before the write ran. Dropping instead of writing
// keeps a down mirror's state a strict prefix of the push order — the
// property recovery's max-commit-word selection relies on.
var errQuorumMirrorDown = errors.New("netram: mirror degraded before queued write ran")

// wireSpan is one expanded (alignment-applied) wire range.
type wireSpan struct {
	lo, hi uint64
}

// fanoutJob is one mirror's share of a parallel push. The dispatcher
// fills it under the topology read lock (so the Mirror value cannot be
// swapped mid-flight), the slot's worker executes it, and the
// dispatcher reads the results back after the join.
type fanoutJob struct {
	wg   *sync.WaitGroup
	m    Mirror
	slot int
	seg  uint32

	// Single-write form (spans == nil): push data at off.
	off  uint64
	data []byte
	// Batch form: push local[s.lo:s.hi] for every span. writes is the
	// job's persistent scratch for the transport.BatchWrite conversion.
	spans  []wireSpan
	local  []byte
	writes []transport.BatchWrite

	// call is set instead of wg on quorum dispatches: the worker retires
	// the job through finishQuorumJob rather than a latch Done.
	call *fanoutCall
	// wire is the job's wire byte count, accounted by the worker on
	// quorum dispatches (the dispatcher may be gone by then).
	wire uint64
	// done marks a quorum job finished; guarded by call.mu.
	done bool

	// Results, valid after wg.Done (all-ack) or done (quorum).
	start, end time.Duration
	retried    bool
	err        error
}

// fanoutCall is the pooled per-dispatch state: the latch, one job per
// mirror slot, and the scratch slices the serial paths use. Pooling it
// keeps the steady-state commit path allocation-free.
//
// Lifecycle: every call starts with one reference (the dispatcher's,
// dropped by releaseCall); a quorum dispatch adds one per job. The last
// reference to go — the dispatcher for synchronous pushes, the slowest
// straggler's worker otherwise — runs reclaimCall: dirty-range
// recording, the straggler gauge, then back to the pool. Recording
// dirty ranges only once all mirrors finished is what keeps the rebuild
// epochs honest in quorum mode: a range leaves the dirty set only after
// every survivor actually holds its bytes.
type fanoutCall struct {
	wg     sync.WaitGroup
	jobs   []fanoutJob
	spans  []wireSpan
	writes []transport.BatchWrite

	refs atomic.Int32

	// Quorum join state, guarded by mu; cond wakes the dispatcher as
	// acks and failures arrive.
	mu             sync.Mutex
	cond           *sync.Cond
	acks, fails    int
	firstErr       error
	firstName      string
	minEnd, maxEnd time.Duration

	// async marks a quorum dispatch (reclaim may happen off the
	// dispatcher goroutine). trackName/trackOff/trackLen/trackSpans
	// stash the wire ranges for reclaim-time dirty recording; trackName
	// empty means tracking was off at dispatch.
	async      bool
	trackName  string
	trackOff   uint64
	trackLen   uint64
	trackSpans []wireSpan
}

func (c *Client) getCall() *fanoutCall {
	call, _ := c.callPool.Get().(*fanoutCall)
	if call == nil {
		call = &fanoutCall{}
		call.cond = sync.NewCond(&call.mu)
	}
	if len(call.jobs) < len(c.mirrors) {
		call.jobs = make([]fanoutJob, len(c.mirrors))
	}
	call.refs.Store(1)
	return call
}

// releaseCall drops one call reference; the last one reclaims.
func (c *Client) releaseCall(call *fanoutCall) {
	if call.refs.Add(-1) == 0 {
		c.reclaimCall(call)
	}
}

// reclaimCall runs once per dispatch, after every job (and the
// dispatcher) is done with the call: records the pushed wire ranges in
// the rebuild's dirty set, refreshes the straggler gauge for quorum
// dispatches, and returns the call to the pool.
func (c *Client) reclaimCall(call *fanoutCall) {
	if call.trackName != "" {
		if call.trackSpans != nil {
			for _, s := range call.trackSpans {
				c.recordDirty(call.trackName, s.lo, s.hi-s.lo)
			}
		} else {
			c.recordDirty(call.trackName, call.trackOff, call.trackLen)
		}
	}
	if call.async {
		call.mu.Lock()
		acks, minEnd, maxEnd := call.acks, call.minEnd, call.maxEnd
		call.mu.Unlock()
		if acks > 1 {
			c.straggler.Store(uint64(maxEnd - minEnd))
		} else {
			c.straggler.Store(0)
		}
	}
	c.putCall(call)
}

func (c *Client) putCall(call *fanoutCall) {
	for i := range call.jobs {
		j := &call.jobs[i]
		j.data, j.local, j.spans = nil, nil, nil
		for k := range j.writes {
			j.writes[k] = transport.BatchWrite{}
		}
		j.err = nil
		j.call = nil
		j.done = false
		j.wire = 0
	}
	for k := range call.writes {
		call.writes[k] = transport.BatchWrite{}
	}
	call.spans = call.spans[:0]
	call.acks, call.fails = 0, 0
	call.firstErr, call.firstName = nil, ""
	call.minEnd, call.maxEnd = 0, 0
	call.async = false
	call.trackName, call.trackOff, call.trackLen, call.trackSpans = "", 0, 0, nil
	c.callPool.Put(call)
}

// startWorkers spawns one sender goroutine per mirror slot. Called at
// most once, lazily, on the first dispatch that can actually go
// parallel — single-mirror clients never pay for the goroutines.
func (c *Client) startWorkers() {
	depth := 4
	if c.quorumW > 0 {
		// The channel doubles as the per-mirror pending catch-up queue:
		// stragglers park here until their turn, and a mirror that falls
		// catchUpQueueLen writes behind overflows and is degraded.
		depth = catchUpQueueLen
	}
	c.senders = make([]chan *fanoutJob, len(c.mirrors))
	for i := range c.senders {
		ch := make(chan *fanoutJob, depth)
		c.senders[i] = ch
		go c.sender(ch)
	}
}

// sender executes jobs for one mirror slot in arrival order; a single
// worker per slot is what preserves per-mirror write ordering. Quorum
// jobs whose mirror was degraded while they queued are dropped, not
// written: executing past the failure point would leave a gap in the
// mirror's write order, and recovery is only safe while every mirror
// holds a strict prefix of it.
func (c *Client) sender(ch chan *fanoutJob) {
	for j := range ch {
		if j.call != nil {
			if c.isDown(j.slot) {
				j.err = errQuorumMirrorDown
			} else {
				c.runJob(j)
			}
			c.finishQuorumJob(j)
			continue
		}
		c.runJob(j)
		j.wg.Done()
	}
}

// finishQuorumJob retires one quorum job on its worker: metrics and
// degradation, the join bookkeeping that may wake the dispatcher, the
// call reference, and finally the pending-catch-up accounting. The
// pending counter is incremented only after the call reference is
// released, so a drainer that observes the counters level also observes
// every reclaim-side effect (dirty records in particular) of the jobs
// it waited for.
func (c *Client) finishQuorumJob(j *fanoutJob) {
	call := j.call
	// After releaseCall the job may be recycled by the next dispatch;
	// nothing of *j may be read past that point.
	slot := j.slot
	if j.err == nil {
		c.metrics.MirrorPush[j.slot].ObserveDuration(j.end - j.start)
		c.metrics.WireBytes.Add(j.wire)
	} else {
		// A straggler that failed after the caller already committed has
		// nobody left to repair it: degrade the mirror so its (possibly
		// divergent) state is never read, and let the guardian revive or
		// rebuild it.
		c.markDown(j.slot)
	}
	call.mu.Lock()
	j.done = true
	if j.err != nil {
		call.fails++
		// Jobs finish out of order, so "first" is arrival order here —
		// the join only needs one representative failure.
		if call.firstErr == nil {
			call.firstErr = j.err
			call.firstName = j.m.Name
		}
	} else {
		if call.acks == 0 || j.end < call.minEnd {
			call.minEnd = j.end
		}
		if call.acks == 0 || j.end > call.maxEnd {
			call.maxEnd = j.end
		}
		call.acks++
	}
	call.cond.Broadcast()
	call.mu.Unlock()
	c.releaseCall(call)
	c.pendMu.Lock()
	c.pendDone[slot]++
	c.pendMu.Unlock()
	c.pendCond.Broadcast()
}

// runJob performs one mirror write (single or batch) with the standard
// retry-and-classify policy, timing it against the client clock.
func (c *Client) runJob(j *fanoutJob) {
	j.start = c.clock.Now()
	if j.spans == nil {
		j.retried, j.err = c.writeWithRetry(j.m, j.slot, j.seg, j.off, j.data)
	} else {
		j.retried, j.err = c.batchWithRetry(j.m, j.slot, j.seg, j.spans, j.local, &j.writes)
	}
	j.end = c.clock.Now()
}

// batchWithRetry pushes every span to one mirror — one batched exchange
// when the transport supports it — applying the same failure
// classification as writeWithRetry. The batch is atomic server-side, so
// a replay after a transient failure is idempotent.
func (c *Client) batchWithRetry(m Mirror, slot int, seg uint32, spans []wireSpan, local []byte, writes *[]transport.BatchWrite) (retried bool, err error) {
	attempt := func() error {
		if bw, ok := m.T.(transport.BatchWriter); ok {
			ws := (*writes)[:0]
			for _, s := range spans {
				ws = append(ws, transport.BatchWrite{Seg: seg, Offset: s.lo, Data: local[s.lo:s.hi]})
			}
			*writes = ws
			return bw.WriteBatch(ws)
		}
		for _, s := range spans {
			if err := m.T.Write(seg, s.lo, local[s.lo:s.hi]); err != nil {
				return err
			}
		}
		return nil
	}
	err = attempt()
	if err == nil {
		return false, nil
	}
	if pingErr := m.T.Ping(); pingErr != nil {
		c.markDown(slot)
		return false, err
	}
	c.metrics.Retries.Inc()
	c.flight.Record(flight.MirrorRetry, "netram", m.Name, uint64(slot))
	if err2 := attempt(); err2 != nil {
		// Surface the retry's error (the current failure mode), keeping
		// the first attempt's for context — see writeWithRetry.
		return true, fmt.Errorf("%w (first attempt: %v)", err2, err)
	}
	return true, nil
}

// pushMirrors propagates one wire payload (single range, or a span
// batch) to every eligible mirror and aggregates the outcome with the
// same semantics the sequential loop had: an error on a mirror that
// still answers pings surfaces to the caller (lowest slot wins, for
// determinism), a mirror whose ping fails too is degraded and skipped,
// and zero successful mirrors is ErrAllMirrorsDown.
//
// Caller holds topoMu.RLock for the whole call, which is what lets the
// jobs capture Mirror values and segment handles without copies being
// swapped underneath, and what orders recordDirty after the join.
func (c *Client) pushMirrors(r *Region, call *fanoutCall, off uint64, data []byte, spans []wireSpan, wireBytes uint64, tt *trace.TxTrace, allAck bool) (int, error) {
	eligible := 0
	for i := range c.mirrors {
		if c.isDown(i) || r.handles[i].ID == 0 {
			continue
		}
		eligible++
	}
	if eligible == 0 {
		return 0, fmt.Errorf("netram: push %q: %w", r.Name, ErrAllMirrorsDown)
	}
	if eligible == 1 || c.serialFanout || c.closed.Load() {
		return c.pushSerial(r, call, off, data, spans, wireBytes, tt)
	}
	if c.quorumW > 0 && !allAck {
		return c.pushParallelQuorum(r, call, off, data, spans, wireBytes, tt)
	}
	return c.pushParallel(r, call, off, data, spans, wireBytes, tt)
}

// pushSerial is the in-line path: the only eligible mirror (the common
// single-replica configuration), or every mirror in slot order when
// parallel dispatch is disabled. Matches the historical sequential
// semantics exactly, including stopping at the first alive-mirror
// error.
func (c *Client) pushSerial(r *Region, call *fanoutCall, off uint64, data []byte, spans []wireSpan, wireBytes uint64, tt *trace.TxTrace) (int, error) {
	pushed := 0
	for i := range c.mirrors {
		if c.isDown(i) || r.handles[i].ID == 0 {
			continue
		}
		m := c.mirrors[i]
		sp := tt.Start(trace.LayerNetram, m.Name)
		start := c.clock.Now()
		var retried bool
		var err error
		if spans == nil {
			retried, err = c.writeWithRetry(m, i, r.handles[i].ID, off, data)
		} else {
			retried, err = c.batchWithRetry(m, i, r.handles[i].ID, spans, r.Local, &call.writes)
		}
		if retried {
			tt.Event(trace.LayerNetram, "retry", uint64(i))
		}
		if err != nil {
			sp.End()
			if c.isDown(i) {
				continue // node degraded; stay available via the others
			}
			if spans == nil {
				return pushed, fmt.Errorf("netram: push to mirror %s: %w", m.Name, err)
			}
			return pushed, fmt.Errorf("netram: batch push to mirror %s: %w", m.Name, err)
		}
		c.metrics.MirrorPush[i].ObserveDuration(c.clock.Now() - start)
		sp.EndN(wireBytes)
		pushed++
	}
	if pushed == 0 {
		return 0, fmt.Errorf("netram: push %q: %w", r.Name, ErrAllMirrorsDown)
	}
	// A serial push has no fan-out spread; clear the gauge so it does
	// not report the last parallel dispatch's gap forever after the
	// client degrades to one mirror (or runs WithSerialFanout).
	c.straggler.Store(0)
	return pushed, nil
}

// pushParallel dispatches one job per eligible mirror to the sender
// workers and joins on the latch. Per-mirror intervals are appended to
// the trace after the join (TxTrace is goroutine-owned, so workers
// never touch it) under a "fanout" umbrella span.
func (c *Client) pushParallel(r *Region, call *fanoutCall, off uint64, data []byte, spans []wireSpan, wireBytes uint64, tt *trace.TxTrace) (int, error) {
	c.workerOnce.Do(c.startWorkers)
	fo := tt.Start(trace.LayerNetram, "fanout")
	dispatched := call.jobs[:0]
	for i := range c.mirrors {
		if c.isDown(i) || r.handles[i].ID == 0 {
			continue
		}
		j := &call.jobs[len(dispatched)]
		dispatched = call.jobs[:len(dispatched)+1]
		j.wg = &call.wg
		j.m = c.mirrors[i]
		j.slot = i
		j.seg = r.handles[i].ID
		j.off, j.data = off, data
		j.spans, j.local = spans, nil
		if spans != nil {
			j.local = r.Local
		}
		call.wg.Add(1)
		c.senders[i] <- j
	}
	call.wg.Wait()

	pushed := 0
	var firstErr error
	var firstName string
	var minEnd, maxEnd time.Duration
	for k := range dispatched {
		j := &dispatched[k]
		if j.retried {
			tt.Event(trace.LayerNetram, "retry", uint64(j.slot))
		}
		tt.Completed(trace.LayerNetram, j.m.Name, j.start, j.end-j.start, wireBytes)
		if j.err != nil {
			if !c.isDown(j.slot) && firstErr == nil {
				firstErr = j.err
				firstName = j.m.Name
			}
			continue
		}
		c.metrics.MirrorPush[j.slot].ObserveDuration(j.end - j.start)
		if pushed == 0 || j.end < minEnd {
			minEnd = j.end
		}
		if pushed == 0 || j.end > maxEnd {
			maxEnd = j.end
		}
		pushed++
	}
	fo.EndN(wireBytes)
	c.metrics.Fanouts.Inc()
	if pushed > 1 {
		// The straggler gap: how much longer the slowest mirror took
		// than the fastest — the wall-clock win over a sequential
		// fan-out is roughly the sum of these gaps.
		c.straggler.Store(uint64(maxEnd - minEnd))
	} else {
		// Zero or one ack: no spread to report. Clearing (rather than
		// keeping the previous dispatch's value) stops the gauge going
		// stale when mirrors die mid-run.
		c.straggler.Store(0)
	}
	if firstErr != nil {
		if spans == nil {
			return pushed, fmt.Errorf("netram: push to mirror %s: %w", firstName, firstErr)
		}
		return pushed, fmt.Errorf("netram: batch push to mirror %s: %w", firstName, firstErr)
	}
	if pushed == 0 {
		return 0, fmt.Errorf("netram: push %q: %w", r.Name, ErrAllMirrorsDown)
	}
	return pushed, nil
}

// pushParallelQuorum dispatches one job per eligible mirror exactly as
// pushParallel does, but joins on the first quorumW acks instead of the
// full latch: the caller returns with the write durable on a quorum
// while the stragglers complete asynchronously on their sender workers.
// The pooled call outlives the dispatcher via reference counting; the
// last finisher reclaims it (recording the rebuild dirty ranges and the
// straggler gauge — see fanoutCall).
//
// The returned mirror count is always zero: the workers account
// per-mirror wire bytes themselves, since acks keep arriving after the
// caller is gone.
func (c *Client) pushParallelQuorum(r *Region, call *fanoutCall, off uint64, data []byte, spans []wireSpan, wireBytes uint64, tt *trace.TxTrace) (int, error) {
	c.workerOnce.Do(c.startWorkers)
	fo := tt.Start(trace.LayerNetram, "quorum_fanout")
	call.async = true
	dispatched := call.jobs[:0]
	for i := range c.mirrors {
		if c.isDown(i) || r.handles[i].ID == 0 {
			continue
		}
		j := &call.jobs[len(dispatched)]
		dispatched = call.jobs[:len(dispatched)+1]
		j.wg = nil
		j.call = call
		j.m = c.mirrors[i]
		j.slot = i
		j.seg = r.handles[i].ID
		j.off, j.data = off, data
		j.spans, j.local = spans, nil
		if spans != nil {
			j.local = r.Local
		}
		j.wire = wireBytes
		// The job's reference is taken before the send: once the worker
		// can see the job, the call must already be pinned.
		call.refs.Add(1)
		select {
		case c.senders[i] <- j:
			c.pendMu.Lock()
			c.pendEnq[i]++
			c.pendMu.Unlock()
		default:
			// The mirror's catch-up queue is full — it has fallen
			// catchUpQueueLen writes behind the quorum. Degrade it and
			// drop the write (its queued predecessors are dropped by the
			// worker, keeping the mirror's state a prefix); the guardian
			// revives or rebuilds it with a full resync.
			call.refs.Add(-1)
			dispatched = dispatched[:len(dispatched)-1]
			c.markDown(i)
			c.metrics.CatchUpOverflows.Inc()
			c.flight.Record(flight.CatchUpOverflow, "netram", "catch-up queue full", uint64(i))
		}
	}
	nDispatched := len(dispatched)
	if nDispatched == 0 {
		call.async = false
		fo.End()
		return 0, fmt.Errorf("netram: push %q: %w", r.Name, ErrAllMirrorsDown)
	}
	// Never demand more acks than mirrors written: a degraded mirror
	// set keeps committing on whoever is left, the same
	// availability-over-strictness policy the all-ack path has always
	// applied by skipping down mirrors.
	need := c.quorumW
	if nDispatched < need {
		need = nDispatched
	}

	call.mu.Lock()
	for call.acks < need && nDispatched-call.fails >= need {
		call.cond.Wait()
	}
	acks := call.acks
	firstErr, firstName := call.firstErr, call.firstName
	for k := range dispatched {
		j := &dispatched[k]
		if !j.done {
			continue // straggler: its span cannot be recorded on tt after we return
		}
		if j.retried {
			tt.Event(trace.LayerNetram, "retry", uint64(j.slot))
		}
		tt.Completed(trace.LayerNetram, j.m.Name, j.start, j.end-j.start, wireBytes)
	}
	call.mu.Unlock()

	fo.EndN(wireBytes)
	c.metrics.Fanouts.Inc()
	c.metrics.AckDepth.Observe(uint64(acks))
	if acks >= need {
		return 0, nil
	}
	if firstErr != nil {
		if spans == nil {
			return 0, fmt.Errorf("netram: push to mirror %s: %w", firstName, firstErr)
		}
		return 0, fmt.Errorf("netram: batch push to mirror %s: %w", firstName, firstErr)
	}
	return 0, fmt.Errorf("netram: push %q: %w", r.Name, ErrAllMirrorsDown)
}

// Close stops the sender workers. Call once the data path is quiescent
// (no Push/PushMany in flight or following); a closed client degrades
// to the serial path if pushed again, it does not panic.
func (c *Client) Close() {
	c.topoMu.Lock()
	defer c.topoMu.Unlock()
	if c.closed.Swap(true) {
		return
	}
	// Let queued quorum stragglers retire before their channels close;
	// no new jobs can arrive while the topology write lock is held.
	c.drainCatchUp()
	for _, ch := range c.senders {
		close(ch)
	}
	c.senders = nil
}
