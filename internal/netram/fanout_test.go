package netram

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/sci"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/transport"
)

// gated wraps a transport and parks every Write/WriteBatch until the
// gate channel is closed, simulating a mirror that is alive but slow.
type gated struct {
	transport.Transport
	gate chan struct{}
}

func (g *gated) Write(seg uint32, offset uint64, data []byte) error {
	<-g.gate
	return g.Transport.Write(seg, offset, data)
}

func (g *gated) WriteBatch(writes []transport.BatchWrite) error {
	<-g.gate
	if bw, ok := g.Transport.(transport.BatchWriter); ok {
		return bw.WriteBatch(writes)
	}
	for _, w := range writes {
		if err := g.Transport.Write(w.Seg, w.Offset, w.Data); err != nil {
			return err
		}
	}
	return nil
}

// mirrorBytes reads n bytes of a named region directly from a mirror's
// server, bypassing the client.
func mirrorBytes(t *testing.T, srv *memserver.Server, name string, off, n uint64) []byte {
	t.Helper()
	seg, err := srv.Connect(name)
	if err != nil {
		t.Fatal(err)
	}
	got, err := srv.Read(seg.ID, off, uint32(n))
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestParallelFanoutNotDelayedBySlowMirror pins the point of the
// parallel fan-out: while one mirror's write is parked (a retry, a
// stalled TCP peer), the other mirror's write completes independently —
// its server holds the bytes before the slow mirror is released.
func TestParallelFanoutNotDelayedBySlowMirror(t *testing.T) {
	clock := simclock.NewSim()
	var servers []*memserver.Server
	var mirrors []Mirror
	gate := make(chan struct{})
	for i := 0; i < 2; i++ {
		srv := memserver.New(memserver.WithLabel("node" + string(rune('A'+i))))
		tr, err := transport.NewInProc(srv, sci.DefaultParams(), clock)
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
		var tp transport.Transport = tr
		if i == 1 {
			tp = &gated{Transport: tr, gate: gate}
		}
		mirrors = append(mirrors, Mirror{Name: srv.Label(), T: tp})
	}
	c, err := NewClient(mirrors)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := c.Malloc("db", 256)
	if err != nil {
		t.Fatal(err)
	}
	copy(reg.Local, []byte("independent"))

	done := make(chan error, 1)
	go func() { done <- c.Push(reg, 0, 11) }()

	// The fast mirror must receive the bytes while the slow mirror is
	// still parked and the overall Push has not returned.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := mirrorBytes(t, servers[0], "db", 0, 11); bytes.Equal(got, []byte("independent")) {
			break
		}
		select {
		case err := <-done:
			t.Fatalf("push returned (%v) before fast mirror had the bytes", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("fast mirror never received the push while the slow one was parked")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-done:
		t.Fatalf("push returned %v while one mirror was still parked", err)
	default:
	}

	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("push: %v", err)
	}
	if got := mirrorBytes(t, servers[1], "db", 0, 11); !bytes.Equal(got, []byte("independent")) {
		t.Errorf("slow mirror holds %q", got)
	}
}

// TestParallelFanoutRetryIsolated checks the worker-side retry: a
// transient failure on one mirror is retried inside that mirror's
// worker and succeeds without surfacing, while the healthy mirror is
// untouched.
func TestParallelFanoutRetryIsolated(t *testing.T) {
	clock := simclock.NewSim()
	var servers []*memserver.Server
	var mirrors []Mirror
	var fl *flaky
	for i := 0; i < 2; i++ {
		srv := memserver.New(memserver.WithLabel("node" + string(rune('A'+i))))
		tr, err := transport.NewInProc(srv, sci.DefaultParams(), clock)
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
		var tp transport.Transport = tr
		if i == 1 {
			fl = &flaky{Transport: tr}
			tp = fl
		}
		mirrors = append(mirrors, Mirror{Name: srv.Label(), T: tp})
	}
	c, err := NewClient(mirrors)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := c.Malloc("db", 256)
	if err != nil {
		t.Fatal(err)
	}
	copy(reg.Local, []byte("retried"))

	fl.failNext = 1
	if err := c.Push(reg, 0, 7); err != nil {
		t.Fatalf("transient failure should be retried in the worker: %v", err)
	}
	if got := c.Metrics().Retries.Load(); got != 1 {
		t.Errorf("retries = %d, want 1", got)
	}
	if c.Live() != 2 {
		t.Error("pingable mirror was degraded")
	}
	for i, srv := range servers {
		if got := mirrorBytes(t, srv, "db", 0, 7); !bytes.Equal(got, []byte("retried")) {
			t.Errorf("mirror %d holds %q", i, got)
		}
	}
}

// TestSerialParallelEquivalence pins figure neutrality: the same push
// sequence over the parallel fan-out and over WithSerialFanout charges
// identical virtual time and identical traffic stats. SimClock.Advance
// is additive and commutative, so worker interleaving cannot change the
// sum.
func TestSerialParallelEquivalence(t *testing.T) {
	run := func(opts ...Option) (time.Duration, Stats) {
		r := newRig(t, 3, opts...)
		reg, err := r.client.Malloc("db", 8192)
		if err != nil {
			t.Fatal(err)
		}
		for i := range reg.Local {
			reg.Local[i] = byte(i)
		}
		for k := 0; k < 10; k++ {
			if err := r.client.Push(reg, uint64(k*64), 64); err != nil {
				t.Fatal(err)
			}
			if err := r.client.PushMany(reg, []Range{
				{Offset: uint64(k * 128), Length: 100},
				{Offset: 4096 + uint64(k*96), Length: 33},
			}); err != nil {
				t.Fatal(err)
			}
		}
		return r.clock.Now(), r.client.Stats()
	}
	parTime, parStats := run()
	serTime, serStats := run(WithSerialFanout())
	if parTime != serTime {
		t.Errorf("virtual time diverged: parallel %v, serial %v", parTime, serTime)
	}
	if parStats != serStats {
		t.Errorf("stats diverged:\nparallel %+v\nserial   %+v", parStats, serStats)
	}
}

// TestPushAllocsZero pins the allocation-free steady-state commit path:
// after warm-up, Push and PushMany over a 2-mirror parallel fan-out
// allocate nothing.
func TestPushAllocsZero(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	r := newRig(t, 2)
	reg, err := r.client.Malloc("db", 4096)
	if err != nil {
		t.Fatal(err)
	}
	ranges := []Range{{Offset: 0, Length: 64}, {Offset: 512, Length: 200}, {Offset: 2048, Length: 9}}
	for i := 0; i < 8; i++ { // warm the worker pool and scratch buffers
		if err := r.client.Push(reg, 128, 64); err != nil {
			t.Fatal(err)
		}
		if err := r.client.PushMany(reg, ranges); err != nil {
			t.Fatal(err)
		}
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := r.client.Push(reg, 128, 64); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("Push allocates %.1f objects per run, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := r.client.PushMany(reg, ranges); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("PushMany allocates %.1f objects per run, want 0", n)
	}
}

// TestCloseDegradesToSerial: a closed client keeps its data path — a
// push after Close runs the serial loop instead of panicking on the
// stopped workers.
func TestCloseDegradesToSerial(t *testing.T) {
	r := newRig(t, 2)
	reg, err := r.client.Malloc("db", 256)
	if err != nil {
		t.Fatal(err)
	}
	copy(reg.Local, []byte("before"))
	if err := r.client.Push(reg, 0, 6); err != nil { // spins up workers
		t.Fatal(err)
	}
	r.client.Close()
	r.client.Close() // idempotent
	copy(reg.Local, []byte("afterx"))
	if err := r.client.Push(reg, 0, 6); err != nil {
		t.Fatalf("push after Close: %v", err)
	}
	for i, srv := range r.servers {
		if got := mirrorBytes(t, srv, "db", 0, 6); !bytes.Equal(got, []byte("afterx")) {
			t.Errorf("mirror %d holds %q", i, got)
		}
	}
}

// TestFanoutRaceMirrorDeathAndRebuild hammers the fan-out while a
// mirror dies and is rebuilt onto a replacement — the torture test the
// race detector runs over the topology lock, the dirty-range tracking
// and the sender workers. After the dust settles every surviving mirror
// must match local memory byte for byte.
func TestFanoutRaceMirrorDeathAndRebuild(t *testing.T) {
	r := newRig(t, 3)
	reg, err := r.client.Malloc("db", 16384)
	if err != nil {
		t.Fatal(err)
	}

	spareSrv := memserver.New(memserver.WithLabel("spare"))
	spareTr, err := transport.NewInProc(spareSrv, sci.DefaultParams(), r.clock)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(g * 4096)
			for k := 0; ; k++ {
				select {
				case <-stop:
					return
				default:
				}
				off := base + uint64(k%32)*64
				copy(reg.Local[off:off+64], bytes.Repeat([]byte{byte(g<<4 | k&0xf)}, 64))
				if err := r.client.PushMany(reg, []Range{{Offset: off, Length: 64}}); err != nil {
					t.Errorf("pusher %d: %v", g, err)
					return
				}
			}
		}(g)
	}

	time.Sleep(5 * time.Millisecond)
	if err := r.client.MarkMirrorDown(2); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	if err := r.client.RebuildMirror(2, Mirror{Name: "spare", T: spareTr}, nil); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	close(stop)
	wg.Wait()

	mismatches, err := r.client.VerifyAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mismatches {
		t.Errorf("post-rebuild divergence: %v", m)
	}
}
