package riofs

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"github.com/ics-forth/perseas/internal/simclock"
)

func newStore(t *testing.T, mutate ...func(*Params)) (*Store, *simclock.SimClock) {
	t.Helper()
	clock := simclock.NewSim()
	p := DefaultParams()
	for _, m := range mutate {
		m(&p)
	}
	return New(p, clock), clock
}

func TestCreateMapWrite(t *testing.T) {
	s, _ := newStore(t)
	if err := s.Create("vista.db", 256); err != nil {
		t.Fatal(err)
	}
	if err := s.Create("vista.db", 256); err == nil {
		t.Error("duplicate create should fail")
	}
	mem, err := s.Map("vista.db")
	if err != nil {
		t.Fatal(err)
	}
	copy(mem, []byte("direct store"))
	again, err := s.Map("vista.db")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again[:12], []byte("direct store")) {
		t.Error("mapped region not shared")
	}
	if _, err := s.Map("missing"); !errors.Is(err, ErrNoSuchRegion) {
		t.Errorf("map missing: %v", err)
	}
}

func TestFileInterfaceChargesSyscallCost(t *testing.T) {
	s, clock := newStore(t)
	if err := s.Create("rvm.log", 4096); err != nil {
		t.Fatal(err)
	}
	t0 := clock.Now()
	if err := s.WriteFile("rvm.log", 0, []byte("log record")); err != nil {
		t.Fatal(err)
	}
	cost := clock.Now() - t0
	// Syscall path: tens of microseconds, not milliseconds — that is
	// why RVM-on-Rio beats RVM by orders of magnitude.
	if cost < 15*time.Microsecond || cost > 100*time.Microsecond {
		t.Errorf("file write cost %v, want tens of us", cost)
	}
	got, err := s.ReadFile("rvm.log", 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "log record" {
		t.Errorf("read %q", got)
	}
}

func TestFileInterfaceBounds(t *testing.T) {
	s, _ := newStore(t)
	if err := s.Create("r", 64); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteFile("r", 60, make([]byte, 8)); !errors.Is(err, ErrBadRange) {
		t.Errorf("overflow write: %v", err)
	}
	if _, err := s.ReadFile("r", 0, 65); !errors.Is(err, ErrBadRange) {
		t.Errorf("overflow read: %v", err)
	}
	if err := s.WriteFile("missing", 0, []byte{1}); !errors.Is(err, ErrNoSuchRegion) {
		t.Errorf("write missing: %v", err)
	}
	if _, err := s.ReadFile("missing", 0, 1); !errors.Is(err, ErrNoSuchRegion) {
		t.Errorf("read missing: %v", err)
	}
}

func TestSurvivesProcessAndOSCrash(t *testing.T) {
	for _, kind := range []CrashKind{CrashProcess, CrashOS} {
		t.Run(kind.String(), func(t *testing.T) {
			s, _ := newStore(t)
			if err := s.Create("db", 64); err != nil {
				t.Fatal(err)
			}
			if err := s.WriteFile("db", 0, []byte("survives")); err != nil {
				t.Fatal(err)
			}
			s.Crash(kind)
			s.Restart()
			got, err := s.ReadFile("db", 0, 8)
			if err != nil {
				t.Fatalf("read after %v crash: %v", kind, err)
			}
			if string(got) != "survives" {
				t.Errorf("read %q after %v crash", got, kind)
			}
		})
	}
}

func TestPowerCrashLosesContentsWithoutUPS(t *testing.T) {
	s, _ := newStore(t)
	if err := s.Create("db", 64); err != nil {
		t.Fatal(err)
	}
	s.Crash(CrashPower)
	if !s.Lost() {
		t.Fatal("power crash without UPS should lose the cache")
	}
	if _, err := s.ReadFile("db", 0, 8); !errors.Is(err, ErrLost) {
		t.Errorf("read after power crash: %v", err)
	}
	if err := s.Create("x", 8); !errors.Is(err, ErrLost) {
		t.Errorf("create while down: %v", err)
	}
	s.Restart()
	// The machine reboots with an empty cache.
	if _, err := s.ReadFile("db", 0, 8); !errors.Is(err, ErrNoSuchRegion) {
		t.Errorf("old region after reboot: %v", err)
	}
	if err := s.Create("db", 64); err != nil {
		t.Errorf("create after reboot: %v", err)
	}
}

func TestPowerCrashSurvivesWithUPS(t *testing.T) {
	s, _ := newStore(t, func(p *Params) { p.HasUPS = true })
	if err := s.Create("db", 64); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteFile("db", 0, []byte("ups")); err != nil {
		t.Fatal(err)
	}
	s.Crash(CrashPower)
	s.Restart()
	got, err := s.ReadFile("db", 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "ups" {
		t.Errorf("read %q, want ups", got)
	}
}

func TestDeleteAndRegions(t *testing.T) {
	s, _ := newStore(t)
	if err := s.Create("a", 8); err != nil {
		t.Fatal(err)
	}
	if err := s.Create("b", 8); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Regions()); got != 2 {
		t.Errorf("regions = %d, want 2", got)
	}
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("a"); !errors.Is(err, ErrNoSuchRegion) {
		t.Errorf("double delete: %v", err)
	}
	if got := len(s.Regions()); got != 1 {
		t.Errorf("regions = %d, want 1", got)
	}
}

func TestCrashKindString(t *testing.T) {
	for kind, want := range map[CrashKind]string{
		CrashProcess: "process", CrashOS: "os", CrashPower: "power",
		CrashKind(9): "crash(9)",
	} {
		if got := kind.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(kind), got, want)
		}
	}
}
