// Package riofs models the Rio file cache (Chen et al., ASPLOS 1996):
// main memory that the operating system promises not to destroy on a
// software crash. RVM-on-Rio writes its log through the file system
// interface at memory speed; Vista maps Rio regions directly and
// manipulates them with plain stores.
//
// The model provides both access styles with distinct costs, and a
// crash switch that implements Rio's survival matrix: contents survive
// process and OS crashes, but a power failure loses them unless the
// machine is configured with a UPS — and even then the paper notes a UPS
// can malfunction, which the Perseas two-machine mirror tolerates and a
// single Rio machine does not.
package riofs

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/ics-forth/perseas/internal/fault"
	"github.com/ics-forth/perseas/internal/hostmem"
	"github.com/ics-forth/perseas/internal/simclock"
)

// Crash kinds are shared across substrates; see the fault package.
type CrashKind = fault.CrashKind

// Aliases so riofs callers can name crash kinds without importing fault.
const (
	CrashProcess = fault.CrashProcess
	CrashOS      = fault.CrashOS
	CrashPower   = fault.CrashPower
)

// Errors returned by the store.
var (
	// ErrBadRange is returned for out-of-bounds accesses.
	ErrBadRange = errors.New("riofs: access out of bounds")
	// ErrLost is returned when reading a region destroyed by a crash.
	ErrLost = errors.New("riofs: contents lost in crash")
	// ErrNoSuchRegion is returned for unknown region names.
	ErrNoSuchRegion = errors.New("riofs: no such region")
)

// Params prices accesses to the file cache.
type Params struct {
	// FileWriteBase is the syscall-path overhead of one write() into
	// the cache (RVM-on-Rio's log writes go this way).
	FileWriteBase time.Duration
	// Mem prices the underlying memory copies.
	Mem hostmem.Model
	// HasUPS marks the machine as UPS-protected: contents then survive
	// power failures too.
	HasUPS bool
}

// DefaultParams models the paper's platform: a ~20 us kernel write path
// and era-appropriate copy bandwidth.
func DefaultParams() Params {
	return Params{
		FileWriteBase: 20 * time.Microsecond,
		Mem:           hostmem.Default(),
	}
}

// Store is one machine's Rio file cache holding named regions.
type Store struct {
	params Params
	clock  simclock.Clock

	mu      sync.Mutex
	regions map[string][]byte
	lost    bool
}

// Params returns the store's configuration.
func (s *Store) Params() Params { return s.params }

// New creates an empty file cache charging time to clock.
func New(params Params, clock simclock.Clock) *Store {
	return &Store{
		params:  params,
		clock:   clock,
		regions: make(map[string][]byte),
	}
}

// Create allocates a zeroed region. Creating an existing name fails.
func (s *Store) Create(name string, size uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lost {
		return ErrLost
	}
	if _, ok := s.regions[name]; ok {
		return fmt.Errorf("riofs: region %q exists", name)
	}
	s.regions[name] = make([]byte, size)
	return nil
}

// Map returns the region's backing memory for direct stores — Vista's
// access style. Writes through the returned slice are free of syscall
// cost; callers charge hostmem copy costs themselves.
func (s *Store) Map(name string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lost {
		return nil, ErrLost
	}
	region, ok := s.regions[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchRegion, name)
	}
	return region, nil
}

// WriteFile copies data into a region through the file-system interface —
// RVM-on-Rio's access style — charging the syscall base plus copy cost.
func (s *Store) WriteFile(name string, offset uint64, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lost {
		return ErrLost
	}
	region, ok := s.regions[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchRegion, name)
	}
	if offset > uint64(len(region)) || uint64(len(data)) > uint64(len(region))-offset {
		return fmt.Errorf("%w: [%d,+%d) in %d-byte region %q",
			ErrBadRange, offset, len(data), len(region), name)
	}
	copy(region[offset:], data)
	s.clock.Advance(s.params.FileWriteBase + s.params.Mem.CopyCost(len(data)))
	return nil
}

// ReadFile copies data out of a region through the file-system interface.
func (s *Store) ReadFile(name string, offset uint64, n int) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lost {
		return nil, ErrLost
	}
	region, ok := s.regions[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchRegion, name)
	}
	if n < 0 || offset > uint64(len(region)) || uint64(n) > uint64(len(region))-offset {
		return nil, fmt.Errorf("%w: [%d,+%d) in %d-byte region %q",
			ErrBadRange, offset, n, len(region), name)
	}
	out := make([]byte, n)
	copy(out, region[offset:])
	s.clock.Advance(s.params.FileWriteBase + s.params.Mem.CopyCost(n))
	return out, nil
}

// Delete removes a region.
func (s *Store) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lost {
		return ErrLost
	}
	if _, ok := s.regions[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchRegion, name)
	}
	delete(s.regions, name)
	return nil
}

// Regions lists live region names (unsorted).
func (s *Store) Regions() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.regions))
	for name := range s.regions {
		out = append(out, name)
	}
	return out
}

// Crash applies a failure of the given kind. Process and OS crashes leave
// the cache intact — that is Rio's whole point; a power failure destroys
// it unless the machine has a UPS.
func (s *Store) Crash(kind CrashKind) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if kind == CrashPower && !s.params.HasUPS {
		s.regions = make(map[string][]byte)
		s.lost = true
	}
}

// Restart brings the machine back up. Surviving regions stay readable;
// a store that lost its contents comes back empty but usable.
func (s *Store) Restart() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lost = false
}

// Lost reports whether the last crash destroyed the cache.
func (s *Store) Lost() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lost
}
