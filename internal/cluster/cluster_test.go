package cluster_test

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/ics-forth/perseas/internal/cluster"
	"github.com/ics-forth/perseas/internal/core"
	"github.com/ics-forth/perseas/internal/debugmux"
	"github.com/ics-forth/perseas/internal/flight"
	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/obs"
	"github.com/ics-forth/perseas/internal/sci"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/transport"
	"github.com/ics-forth/perseas/internal/txserver"
)

// rig builds one library over two in-process mirrors.
func rig(t *testing.T) (*core.Library, *netram.Client, *simclock.SimClock) {
	t.Helper()
	clock := simclock.NewSim()
	var mirrors []netram.Mirror
	for i := 0; i < 2; i++ {
		srv := memserver.New()
		tr, err := transport.NewInProc(srv, sci.DefaultParams(), clock)
		if err != nil {
			t.Fatal(err)
		}
		mirrors = append(mirrors, netram.Mirror{Name: srv.Label(), T: tr})
	}
	net, err := netram.NewClient(mirrors)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := core.Init(net, clock)
	if err != nil {
		t.Fatal(err)
	}
	return lib, net, clock
}

// TestSnapshotAggregates: a snapshot carries per-shard transaction
// counts, conflict occupancy, mirror health and phase quantiles, plus
// the front door's admission counters.
func TestSnapshotAggregates(t *testing.T) {
	lib, net, clock := rig(t)
	db, err := lib.CreateDB("t", 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := lib.InitDB(db); err != nil {
		t.Fatal(err)
	}
	tx, err := lib.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(db, 0, 16); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// An open transaction holds one claim while the snapshot samples.
	open, err := lib.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := open.SetRange(db, 32, 8); err != nil {
		t.Fatal(err)
	}

	fr := flight.New(8)
	fr.Enable()
	fr.Record(flight.BusyReject, "txserver", "test", 0)
	srv := txserver.New(lib)
	cfg := &cluster.Config{
		Server: srv,
		Shards: []cluster.ShardSource{{Label: "shard0", Lib: lib, Net: net}},
		Flight: fr,
		Clock:  clock,
	}
	snap := cfg.Snapshot()

	if snap.Server == nil {
		t.Fatal("snapshot has no server block")
	}
	if len(snap.Shards) != 1 {
		t.Fatalf("snapshot has %d shards, want 1", len(snap.Shards))
	}
	sh := snap.Shards[0]
	if sh.Label != "shard0" || sh.Committed != 1 || sh.Begun != 2 {
		t.Fatalf("shard block = %+v", sh)
	}
	if sh.ConflictClaims != 1 {
		t.Fatalf("conflict claims = %d, want 1 (one open transaction)", sh.ConflictClaims)
	}
	if len(sh.Mirrors) != 2 {
		t.Fatalf("mirror rows = %d, want 2", len(sh.Mirrors))
	}
	for _, m := range sh.Mirrors {
		if m.Down {
			t.Fatalf("mirror %d reported down on a healthy rig", m.Slot)
		}
	}
	var total cluster.PhaseLatency
	for _, p := range sh.Phases {
		if p.Phase == "commit total" {
			total = p
		}
	}
	if total.Count != 1 || total.P999 < total.P50 {
		t.Fatalf("commit total phase = %+v", total)
	}
	if snap.Flight != 1 {
		t.Fatalf("flight events = %d, want 1", snap.Flight)
	}
	if err := open.Abort(); err != nil {
		t.Fatal(err)
	}

	// The rendered table mentions the shard, its mirrors and the flight
	// volume.
	var buf bytes.Buffer
	cluster.WriteTable(&buf, snap)
	for _, want := range []string{"shard0", "mirror 0", "commit total", "flight events: 1"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, buf.String())
		}
	}
}

// TestDebugMuxServesEverything: one mux serves metrics, traces,
// events, the cluster snapshot and the pprof family.
func TestDebugMuxServesEverything(t *testing.T) {
	lib, net, clock := rig(t)
	reg := obs.NewRegistry()
	lib.RegisterMetrics(reg)
	fr := flight.New(8)
	fr.Enable()
	fr.RegisterMetrics(reg)
	cfg := &cluster.Config{
		Shards: []cluster.ShardSource{{Label: "s", Lib: lib, Net: net}},
		Flight: fr,
		Clock:  clock,
	}
	mux := debugmux.Build(debugmux.Config{
		Registry:             reg,
		Flight:               fr,
		Cluster:              cfg,
		BlockProfileRate:     1,
		MutexProfileFraction: 1,
	})
	for path, want := range map[string]string{
		"/metrics":             "perseas_flight_events_total",
		"/debug/events":        `"events"`,
		"/debug/cluster":       `"shards"`,
		"/debug/pprof/heap":    "",
		"/debug/pprof/block":   "",
		"/debug/pprof/mutex":   "",
		"/debug/pprof/cmdline": "",
	} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("%s answered %d", path, rec.Code)
		}
		if want != "" && !strings.Contains(rec.Body.String(), want) {
			t.Fatalf("%s response missing %q", path, want)
		}
	}
	// The cluster document decodes as JSON.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/cluster", nil))
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/debug/cluster is not JSON: %v", err)
	}
}
