// Package cluster aggregates the health of a whole PERSEAS
// installation — front-door server, every shard's engine, every
// shard's mirror set — into one structured snapshot. The snapshot
// serves as JSON at /debug/cluster on the metrics mux and renders as a
// terminal table for perseas-inspect -watch, so "is the cluster
// healthy and where is it hurting" is one request instead of a scrape
// of N Prometheus endpoints.
//
// Everything here is read-only: a snapshot samples counters, gauges
// and histogram snapshots that already exist, so taking one never
// perturbs the data path (and in particular never advances a
// simulated clock).
package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/ics-forth/perseas/internal/core"
	"github.com/ics-forth/perseas/internal/flight"
	"github.com/ics-forth/perseas/internal/guardian"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/txserver"
)

// ShardSource is one shard's handles, wired at startup.
type ShardSource struct {
	// Label names the shard in output ("shard0", or "perseas" for an
	// unsharded engine).
	Label string
	// Lib is the shard's engine.
	Lib *core.Library
	// Net is the shard's network-RAM client; nil falls back to
	// Lib.Net().
	Net *netram.Client
	// Guard is the shard's failure detector, nil when none runs.
	Guard *guardian.Guardian
}

// Config wires the snapshot's sources. Every field except Shards is
// optional.
type Config struct {
	// Server is the front-door transaction server, when one runs in
	// this process.
	Server *txserver.Server
	// Shards are the engine instances this process hosts.
	Shards []ShardSource
	// Flight contributes the anomaly volume counters.
	Flight *flight.Recorder
	// Clock stamps the snapshot; nil leaves At zero.
	Clock simclock.Clock
}

// MirrorStatus is one mirror slot's health.
type MirrorStatus struct {
	Slot int    `json:"slot"`
	Name string `json:"name"`
	Down bool   `json:"down"`
	// CatchUpPending is how many quorum writes the slot is behind (0 on
	// all-ack configurations).
	CatchUpPending int `json:"catchup_pending"`
	// State is the guardian's view ("healthy", "suspect", ...); empty
	// when no guardian watches this shard.
	State string `json:"state,omitempty"`
}

// PhaseLatency is one commit-path phase's distribution, in
// nanoseconds.
type PhaseLatency struct {
	Phase string  `json:"phase"`
	Count uint64  `json:"count"`
	P50   float64 `json:"p50_ns"`
	P99   float64 `json:"p99_ns"`
	P999  float64 `json:"p999_ns"`
}

// ShardStatus is one shard's snapshot.
type ShardStatus struct {
	Label     string `json:"label"`
	Begun     uint64 `json:"txs_begun"`
	Committed uint64 `json:"txs_committed"`
	Aborted   uint64 `json:"txs_aborted"`
	Conflicts uint64 `json:"conflicts"`
	// ConflictClaims is the conflict table's live range-claim count.
	ConflictClaims int            `json:"conflict_claims"`
	Mirrors        []MirrorStatus `json:"mirrors"`
	Phases         []PhaseLatency `json:"phases"`
}

// ServerStatus is the front door's snapshot.
type ServerStatus struct {
	Conns         uint64 `json:"conns_total"`
	ConnsRejected uint64 `json:"conns_rejected"`
	Requests      uint64 `json:"requests_total"`
	Busy          uint64 `json:"busy_total"`
	Malformed     uint64 `json:"malformed_total"`
	TxsInFlight   uint64 `json:"txs_in_flight"`
	// PipelineP50/P99 sample the per-connection in-flight depth
	// distribution.
	PipelineP50 float64 `json:"pipeline_depth_p50"`
	PipelineP99 float64 `json:"pipeline_depth_p99"`
	// Convoys and ConvoyMax describe group-commit batching.
	Convoys   uint64 `json:"convoys"`
	ConvoyMax uint64 `json:"convoy_max"`
}

// Snapshot is the whole cluster view.
type Snapshot struct {
	At      time.Duration `json:"at_ns"`
	Server  *ServerStatus `json:"server,omitempty"`
	Shards  []ShardStatus `json:"shards"`
	Flight  uint64        `json:"flight_events"`
	Dropped uint64        `json:"flight_dropped"`
}

// Snapshot samples every configured source.
func (c *Config) Snapshot() Snapshot {
	var snap Snapshot
	if c.Clock != nil {
		snap.At = c.Clock.Now()
	}
	if c.Server != nil {
		m := c.Server.Metrics()
		depth := m.Depth.Snapshot()
		batch := m.Batch.Snapshot()
		snap.Server = &ServerStatus{
			Conns:         m.ConnsTotal.Load(),
			ConnsRejected: m.ConnsRejected.Load(),
			Requests:      m.Requests.Load(),
			Busy:          m.Busy.Load(),
			Malformed:     m.Malformed.Load(),
			TxsInFlight:   uint64(c.Server.LiveTxs()),
			PipelineP50:   depth.Quantile(0.5),
			PipelineP99:   depth.Quantile(0.99),
			Convoys:       batch.Count,
			ConvoyMax:     batch.Max,
		}
	}
	snap.Shards = make([]ShardStatus, 0, len(c.Shards))
	for _, sh := range c.Shards {
		snap.Shards = append(snap.Shards, shardStatus(sh))
	}
	snap.Flight = c.Flight.Total()
	snap.Dropped = c.Flight.Dropped()
	return snap
}

func shardStatus(sh ShardSource) ShardStatus {
	st := ShardStatus{Label: sh.Label}
	if st.Label == "" {
		st.Label = "perseas"
	}
	if sh.Lib == nil {
		return st
	}
	stats := sh.Lib.Stats()
	st.Begun, st.Committed, st.Aborted, st.Conflicts =
		stats.Begun, stats.Committed, stats.Aborted, stats.Conflicts
	st.ConflictClaims = sh.Lib.ConflictOccupancy()
	for _, row := range sh.Lib.CommitLatencyRows() {
		st.Phases = append(st.Phases, PhaseLatency{
			Phase: row.Name,
			Count: row.Snap.Count,
			P50:   row.Snap.Quantile(0.5),
			P99:   row.Snap.Quantile(0.99),
			P999:  row.Snap.Quantile(0.999),
		})
	}
	net := sh.Net
	if net == nil {
		net = sh.Lib.Net()
	}
	if net == nil {
		return st
	}
	// The guardian's per-slot view, when one watches this shard.
	var health map[int]guardian.MirrorHealth
	if sh.Guard != nil {
		health = make(map[int]guardian.MirrorHealth)
		for _, h := range sh.Guard.Status() {
			health[h.Slot] = h
		}
	}
	for i := 0; i < net.Mirrors(); i++ {
		ms := MirrorStatus{
			Slot:           i,
			Name:           net.MirrorName(i),
			Down:           net.MirrorDown(i),
			CatchUpPending: net.CatchUpPending(i),
		}
		if h, ok := health[i]; ok {
			ms.State = h.State.String()
		}
		st.Mirrors = append(st.Mirrors, ms)
	}
	return st
}

// WriteJSON writes one indented snapshot document.
func (c *Config) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c.Snapshot())
}

// ServeHTTP implements http.Handler: mount the config at
// /debug/cluster next to the metrics registry.
func (c *Config) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = c.WriteJSON(w)
}

// WriteTable renders snap as the terminal view perseas-inspect -watch
// refreshes: one server block, then per-shard mirror and latency
// tables.
func WriteTable(w io.Writer, snap Snapshot) {
	if snap.Server != nil {
		s := snap.Server
		fmt.Fprintf(w, "front door: %d conns (%d rejected), %d reqs, %d busy, %d in-flight txs\n",
			s.Conns, s.ConnsRejected, s.Requests, s.Busy, s.TxsInFlight)
		fmt.Fprintf(w, "  pipeline depth p50/p99: %.0f/%.0f   convoys: %d (max %d)\n",
			s.PipelineP50, s.PipelineP99, s.Convoys, s.ConvoyMax)
	}
	for _, sh := range snap.Shards {
		fmt.Fprintf(w, "%s: begun %d  committed %d  aborted %d  conflicts %d  claims %d\n",
			sh.Label, sh.Begun, sh.Committed, sh.Aborted, sh.Conflicts, sh.ConflictClaims)
		for _, m := range sh.Mirrors {
			state := m.State
			if state == "" {
				if m.Down {
					state = "down"
				} else {
					state = "up"
				}
			}
			fmt.Fprintf(w, "  mirror %d %-12s %-10s lag %d\n", m.Slot, m.Name, state, m.CatchUpPending)
		}
		for _, p := range sh.Phases {
			fmt.Fprintf(w, "  %-18s n=%-8d p50=%8.1fus p99=%8.1fus p999=%8.1fus\n",
				p.Phase, p.Count, p.P50/1e3, p.P99/1e3, p.P999/1e3)
		}
	}
	fmt.Fprintf(w, "flight events: %d (%d dropped)\n", snap.Flight, snap.Dropped)
}
