package perseas_test

import (
	"fmt"
	"log"

	perseas "github.com/ics-forth/perseas"
)

// The seven-call interface of the paper, end to end.
func Example() {
	cluster, err := perseas.NewLocalCluster(2) // two mirror workstations
	if err != nil {
		log.Fatal(err)
	}
	lib, err := perseas.Init(cluster.RAM, cluster.Clock) // PERSEAS_init
	if err != nil {
		log.Fatal(err)
	}

	db, err := lib.CreateDB("accounts", 4096) // PERSEAS_malloc
	if err != nil {
		log.Fatal(err)
	}
	copy(db.Bytes(), "alice:100;bob:100")
	if err := lib.InitDB(db); err != nil { // PERSEAS_init_remote_db
		log.Fatal(err)
	}

	tx, err := lib.BeginTx() // PERSEAS_begin_transaction
	if err != nil {
		log.Fatal(err)
	}
	if err := tx.SetRange(db, 0, 17); err != nil { // PERSEAS_set_range
		log.Fatal(err)
	}
	copy(db.Bytes(), "alice:090;bob:110")
	if err := tx.Commit(); err != nil { // PERSEAS_commit_transaction
		log.Fatal(err)
	}

	fmt.Println(string(db.Bytes()[:17]))
	// Output: alice:090;bob:110
}

// Update wraps Begin/SetRange/Commit and rolls back on error or panic —
// the idiomatic way to run a transaction.
func ExampleLibrary_Update() {
	cluster, _ := perseas.NewLocalCluster(1)
	lib, _ := perseas.Init(cluster.RAM, cluster.Clock)
	db, _ := lib.CreateDB("kv", 64)
	_ = lib.InitDB(db)

	err := lib.Update(func(tx *perseas.Tx) error {
		return tx.Write(db, 0, []byte("committed"))
	})
	fmt.Println(err, string(db.Bytes()[:9]))

	err = lib.Update(func(tx *perseas.Tx) error {
		if err := tx.Write(db, 0, []byte("doomed!!!")); err != nil {
			return err
		}
		return fmt.Errorf("changed my mind")
	})
	fmt.Println(err, string(db.Bytes()[:9]))
	// Output:
	// <nil> committed
	// changed my mind committed
}

// After the primary workstation fails, any node can attach to the
// surviving mirrors and take over immediately.
func ExampleAttach() {
	cluster, _ := perseas.NewLocalCluster(2)
	lib, _ := perseas.Init(cluster.RAM, cluster.Clock)
	db, _ := lib.CreateDB("state", 64)
	copy(db.Bytes(), "survives the crash")
	_ = lib.InitDB(db)

	// The primary dies with all its main memory.
	_ = lib.Crash(perseas.CrashPower)

	// A different workstation takes over.
	takeover, err := perseas.Attach(cluster.RAM, cluster.Clock)
	if err != nil {
		log.Fatal(err)
	}
	re, _ := takeover.OpenDB("state")
	fmt.Println(string(re.Bytes()[:18]))
	// Output: survives the crash
}

// Aborting restores every declared range from the undo log.
func ExampleLibrary_BeginTx() {
	cluster, _ := perseas.NewLocalCluster(1)
	lib, _ := perseas.Init(cluster.RAM, cluster.Clock)
	db, _ := lib.CreateDB("db", 32)
	copy(db.Bytes(), "original")
	_ = lib.InitDB(db)

	tx, _ := lib.BeginTx()
	_ = tx.SetRange(db, 0, 8)
	copy(db.Bytes(), "mistake!")
	_ = tx.Abort()

	fmt.Println(string(db.Bytes()[:8]))
	// Output: original
}
