package main

import (
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/ics-forth/perseas/internal/core"
	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/transport"
)

func TestParseFlags(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-servers", "a:1,b:2", "-preview", "8", "-snapshot", "out.bin", "-namespace", "lab",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := config{servers: "a:1,b:2", preview: 8, snapshot: "out.bin", namespace: "lab", parallel: 1}
	if cfg != want {
		t.Fatalf("parsed %+v, want %+v", cfg, want)
	}

	cfg, err = parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.servers != "127.0.0.1:7070" || cfg.preview != 32 || cfg.snapshot != "" || cfg.namespace != "" || cfg.parallel != 1 {
		t.Fatalf("defaults: %+v", cfg)
	}

	if _, err := parseFlags([]string{"-preview", "not-a-number"}); err == nil {
		t.Error("bad -preview accepted")
	}
	if _, err := parseFlags([]string{"stray-positional"}); err == nil {
		t.Error("positional argument accepted")
	}
	if opts := coreOptions(config{namespace: "ns"}); len(opts) != 1 {
		t.Errorf("namespace option not applied: %d opts", len(opts))
	}
	if opts := coreOptions(config{}); len(opts) != 0 {
		t.Errorf("spurious core options: %d", len(opts))
	}
}

// startMirror serves an in-process memory server on loopback.
func startMirror(t *testing.T, label string) string {
	t.Helper()
	srv := memserver.New(memserver.WithLabel(label))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = transport.Serve(l, srv) }()
	t.Cleanup(func() { l.Close() })
	return l.Addr().String()
}

// seedDatabase writes a committed PERSEAS database onto the mirrors and
// detaches, simulating the application that later crashed.
func seedDatabase(t *testing.T, addrs []string) {
	t.Helper()
	var mirrors []netram.Mirror
	for _, a := range addrs {
		tr, err := transport.DialTCP(a)
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		mirrors = append(mirrors, netram.Mirror{Name: a, T: tr})
	}
	ram, err := netram.NewClient(mirrors)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := core.Init(ram, simclock.NewWall())
	if err != nil {
		t.Fatal(err)
	}
	db, err := lib.CreateDB("ledger", 4096)
	if err != nil {
		t.Fatal(err)
	}
	copy(db.Bytes(), []byte("recovered-bytes!"))
	if err := lib.InitDB(db); err != nil {
		t.Fatal(err)
	}
	if err := lib.Update(func(tx *core.Tx) error {
		if err := tx.SetRange(db, 0, 16); err != nil {
			return err
		}
		copy(db.Bytes()[:16], []byte("COMMITTED-STATE!"))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRecoversFromLiveServers(t *testing.T) {
	addrs := []string{startMirror(t, "m0"), startMirror(t, "m1")}
	seedDatabase(t, addrs)

	snap := filepath.Join(t.TempDir(), "snap.bin")
	var sb strings.Builder
	cfg := config{servers: strings.Join(addrs, ","), preview: 16, snapshot: snap}
	if err := run(&sb, cfg); err != nil {
		t.Fatalf("run: %v\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{
		"recovered PERSEAS state: committed transaction id 1",
		"snapshot archived to",
		"database ledger",
		// The committed contents, hex-dumped by -preview.
		"43 4f 4d 4d 49 54 54 45 44 2d 53 54 41 54 45 21",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if fi, err := os.Stat(snap); err != nil || fi.Size() == 0 {
		t.Fatalf("snapshot file: %v %v", fi, err)
	}
}

func TestRunFailures(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, config{servers: " , "}); err == nil {
		t.Error("no servers accepted")
	}
	// Nothing listens here: reserve a port, then free it.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := l.Addr().String()
	l.Close()
	if err := run(&sb, config{servers: dead}); err == nil {
		t.Error("unreachable server accepted")
	}
}
