// Command perseas-recover demonstrates the paper's availability claim
// end-to-end over real TCP: mirrored data are accessible from any node in
// the network, so after a primary failure the database can be
// reconstructed immediately on any workstation.
//
// Point it at one or more running perseas-server instances that hold a
// PERSEAS database (for example one written by examples/crashcourse or a
// crashed examples/bank run):
//
//	perseas-recover -servers host1:7070,host2:7070
//
// It attaches, runs the recovery procedure (rolling back any in-flight
// transaction from the remote undo log), and prints the recovered
// databases.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"github.com/ics-forth/perseas/internal/core"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/transport"
)

func main() {
	servers := flag.String("servers", "127.0.0.1:7070",
		"comma-separated addresses of the mirror nodes")
	preview := flag.Int("preview", 32, "bytes of each database to hex-dump")
	snapshot := flag.String("snapshot", "",
		"after recovery, archive a consistent snapshot of every database to this file")
	namespace := flag.String("namespace", "",
		"PERSEAS namespace the database was created under (see WithNamespace)")
	flag.Parse()

	var mirrors []netram.Mirror
	for _, addr := range strings.Split(*servers, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		tr, err := transport.DialTCP(addr)
		if err != nil {
			log.Fatalf("perseas-recover: dial %s: %v", addr, err)
		}
		defer tr.Close()
		mirrors = append(mirrors, netram.Mirror{Name: addr, T: tr})
	}
	if len(mirrors) == 0 {
		log.Fatal("perseas-recover: no servers given")
	}

	net, err := netram.NewClient(mirrors)
	if err != nil {
		log.Fatalf("perseas-recover: %v", err)
	}
	var opts []core.Option
	if *namespace != "" {
		opts = append(opts, core.WithNamespace(*namespace))
	}
	lib, err := core.Attach(net, simclock.NewWall(), opts...)
	if err != nil {
		log.Fatalf("perseas-recover: attach: %v", err)
	}
	fmt.Printf("recovered PERSEAS state: committed transaction id %d\n", lib.CommittedTxID())

	if *snapshot != "" {
		f, err := os.Create(*snapshot)
		if err != nil {
			log.Fatalf("perseas-recover: %v", err)
		}
		if err := lib.WriteSnapshot(f); err != nil {
			log.Fatalf("perseas-recover: snapshot: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("perseas-recover: snapshot: %v", err)
		}
		fmt.Printf("snapshot archived to %s\n", *snapshot)
	}

	for _, m := range mirrors {
		segs, err := m.T.List()
		if err != nil {
			log.Printf("list %s: %v", m.Name, err)
			continue
		}
		for _, s := range segs {
			dbPrefix := "perseas.db."
			if *namespace != "" {
				dbPrefix = *namespace + "/" + dbPrefix
			}
			if !strings.HasPrefix(s.Name, dbPrefix) {
				continue
			}
			name := strings.TrimPrefix(s.Name, dbPrefix)
			db, err := lib.OpenDB(name)
			if err != nil {
				log.Printf("open %s: %v", name, err)
				continue
			}
			n := *preview
			if uint64(n) > db.Size() {
				n = int(db.Size())
			}
			fmt.Printf("database %-16s %8d bytes  head: % x\n", name, db.Size(), db.Bytes()[:n])
		}
		break // one mirror's listing is enough
	}
}
