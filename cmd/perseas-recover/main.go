// Command perseas-recover demonstrates the paper's availability claim
// end-to-end over real TCP: mirrored data are accessible from any node in
// the network, so after a primary failure the database can be
// reconstructed immediately on any workstation.
//
// Point it at one or more running perseas-server instances that hold a
// PERSEAS database (for example one written by examples/crashcourse or a
// crashed examples/bank run):
//
//	perseas-recover -servers host1:7070,host2:7070
//
// It attaches, runs the recovery procedure (rolling back any in-flight
// transaction from the remote undo log), and prints the recovered
// databases.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"github.com/ics-forth/perseas/internal/core"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/transport"
)

// config collects the run parameters so tests can call run directly.
type config struct {
	servers   string
	preview   int
	snapshot  string
	namespace string
	parallel  int
}

// parseFlags reads the command line into a config (split out so tests
// can cover the flag surface).
func parseFlags(args []string) (config, error) {
	var cfg config
	fs := flag.NewFlagSet("perseas-recover", flag.ContinueOnError)
	fs.StringVar(&cfg.servers, "servers", "127.0.0.1:7070",
		"comma-separated addresses of the mirror nodes")
	fs.IntVar(&cfg.preview, "preview", 32, "bytes of each database to hex-dump")
	fs.StringVar(&cfg.snapshot, "snapshot", "",
		"after recovery, archive a consistent snapshot of every database to this file")
	fs.StringVar(&cfg.namespace, "namespace", "",
		"PERSEAS namespace the database was created under (see WithNamespace)")
	fs.IntVar(&cfg.parallel, "parallel", 1,
		"recovery workers: reconnects, undo scans and database fetches run concurrently, striping reads across the mirrors (1 = the paper's serial recovery)")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	if fs.NArg() != 0 {
		return config{}, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	return cfg, nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	if err := run(os.Stdout, cfg); err != nil {
		log.Fatalf("perseas-recover: %v", err)
	}
}

func run(out io.Writer, cfg config) error {
	var mirrors []netram.Mirror
	for _, addr := range strings.Split(cfg.servers, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		tr, err := transport.DialTCP(addr)
		if err != nil {
			return fmt.Errorf("dial %s: %w", addr, err)
		}
		defer tr.Close()
		mirrors = append(mirrors, netram.Mirror{Name: addr, T: tr})
	}
	if len(mirrors) == 0 {
		return fmt.Errorf("no servers given")
	}

	net, err := netram.NewClient(mirrors)
	if err != nil {
		return err
	}
	lib, err := core.Attach(net, simclock.NewWall(), coreOptions(cfg)...)
	if err != nil {
		return fmt.Errorf("attach: %w", err)
	}
	fmt.Fprintf(out, "recovered PERSEAS state: committed transaction id %d\n", lib.CommittedTxID())

	if cfg.snapshot != "" {
		f, err := os.Create(cfg.snapshot)
		if err != nil {
			return err
		}
		if err := lib.WriteSnapshot(f); err != nil {
			f.Close()
			return fmt.Errorf("snapshot: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("snapshot: %w", err)
		}
		fmt.Fprintf(out, "snapshot archived to %s\n", cfg.snapshot)
	}

	for _, m := range mirrors {
		segs, err := m.T.List()
		if err != nil {
			log.Printf("list %s: %v", m.Name, err)
			continue
		}
		for _, s := range segs {
			dbPrefix := "perseas.db."
			if cfg.namespace != "" {
				dbPrefix = cfg.namespace + "/" + dbPrefix
			}
			if !strings.HasPrefix(s.Name, dbPrefix) {
				continue
			}
			name := strings.TrimPrefix(s.Name, dbPrefix)
			db, err := lib.OpenDB(name)
			if err != nil {
				log.Printf("open %s: %v", name, err)
				continue
			}
			n := cfg.preview
			if uint64(n) > db.Size() {
				n = int(db.Size())
			}
			fmt.Fprintf(out, "database %-16s %8d bytes  head: % x\n", name, db.Size(), db.Bytes()[:n])
		}
		break // one mirror's listing is enough
	}
	return nil
}

func coreOptions(cfg config) []core.Option {
	var opts []core.Option
	if cfg.namespace != "" {
		opts = append(opts, core.WithNamespace(cfg.namespace))
	}
	if cfg.parallel > 1 {
		opts = append(opts, core.WithRecoveryParallelism(cfg.parallel))
	}
	return opts
}
