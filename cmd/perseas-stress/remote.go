// The -remote mode: instead of linking the engine, the driver dials a
// perseas-server -tx front door and simulates a fleet of independent
// client processes, each a txclient with its own database replica and
// (by default) a single pipelined connection. This is the tool that
// demonstrates the server holding thousands of concurrent clients:
//
//	perseas-server -tx -listen :7080 -tx-max-txs 16384 &
//	perseas-stress -remote :7080 -clients 10000 -duration 30s
//
// With -remote-chaos, the run is self-contained: it builds an
// in-process tx server over loopback mirrors plus a spare under a
// guardian, kills a mirror halfway through while the remote clients
// keep committing, and ends by proving the replication factor was
// restored and that not one committed transaction was lost — every
// client keeps a ledger of the deltas its committed transactions
// applied, and the sum of the ledgers must equal the account table's
// total drift from its initial fill.
package main

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ics-forth/perseas/internal/bench"
	"github.com/ics-forth/perseas/internal/cluster"
	"github.com/ics-forth/perseas/internal/core"
	"github.com/ics-forth/perseas/internal/debugmux"
	"github.com/ics-forth/perseas/internal/engine"
	"github.com/ics-forth/perseas/internal/flight"
	"github.com/ics-forth/perseas/internal/guardian"
	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/obs"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/trace"
	"github.com/ics-forth/perseas/internal/transport"
	"github.com/ics-forth/perseas/internal/txclient"
	"github.com/ics-forth/perseas/internal/txserver"
)

// chaosRig is the self-contained installation -remote-chaos drives: a
// tx server over real loopback mirrors with a guardian and spare.
type chaosRig struct {
	addr    string
	ram     *netram.Client
	lib     *core.Library
	srv     *txserver.Server
	guard   *guardian.Guardian
	mirrors []mirrorHandle
	closers []io.Closer
	// rec records the server side of every traced transaction; fr is
	// the server's anomaly flight recorder.
	rec   *trace.Recorder
	fr    *flight.Recorder
	clock simclock.Clock
}

func (r *chaosRig) Close() {
	if r.guard != nil {
		r.guard.Stop()
	}
	for _, c := range r.closers {
		c.Close()
	}
}

// runRemote drives a transaction front door with cfg.workers simulated
// client processes.
func runRemote(out io.Writer, cfg config) error {
	out = &syncWriter{w: out}
	clients := cfg.clients
	if clients < 1 {
		clients = 1
	}

	addr := cfg.remote
	var rig *chaosRig
	if cfg.remoteChaos {
		var err error
		if rig, err = buildChaosRig(out, cfg); err != nil {
			return err
		}
		defer rig.Close()
		addr = rig.addr
	}
	if addr == "" {
		return fmt.Errorf("no server given (use -remote addr or -remote-chaos)")
	}

	// The fleet shares one client-side span recorder (process-tagged so
	// a merge with the server's capture stitches into whole
	// transactions) and one busy-pushback metrics block.
	cliRec := trace.NewRecorder()
	cliRec.SetProcess("client")
	if cfg.traceOut != "" {
		cliRec.Enable()
		cliRec.SetSlowerThan(cfg.traceSlower)
	}
	cliM := &txclient.Metrics{}

	// One control client creates the tables; the drivers attach to them.
	setup, err := txclient.Dial(addr)
	if err != nil {
		return fmt.Errorf("dial %s: %w", addr, err)
	}
	defer setup.Close()
	w, err := bench.NewDebitCredit(cfg.branches, cfg.accounts)
	if err != nil {
		return err
	}
	if err := w.Setup(setup); err != nil {
		return fmt.Errorf("setup (the driver needs a freshly started server): %w", err)
	}
	fmt.Fprintf(out, "database: %d bytes across 4 tables on %s; %d remote clients\n",
		w.DBBytes(), addr, clients)

	// Ramp: connect and attach every client before the clock starts, in
	// parallel waves so a 10k-client ramp doesn't serialise on OpenDB
	// round-trips.
	type client struct {
		cl *txclient.Client
		wl *bench.DebitCredit
	}
	fleet := make([]client, clients)
	rampStart := time.Now()
	var rampWg sync.WaitGroup
	rampErrs := make([]error, clients)
	sem := make(chan struct{}, 256)
	for i := 0; i < clients; i++ {
		i := i
		rampWg.Add(1)
		sem <- struct{}{}
		go func() {
			defer rampWg.Done()
			defer func() { <-sem }()
			cl, err := txclient.Dial(addr, txclient.WithConns(1),
				txclient.WithTracer(cliRec), txclient.WithSharedMetrics(cliM))
			if err != nil {
				rampErrs[i] = fmt.Errorf("client %d dial: %w", i, err)
				return
			}
			wl, err := bench.NewDebitCredit(cfg.branches, cfg.accounts)
			if err != nil {
				rampErrs[i] = err
				return
			}
			// Stagger the history cursor so the fleet spreads over the
			// slot space instead of convoying on slot zero.
			if err := wl.Attach(cl, uint64(i)*2654435761); err != nil {
				rampErrs[i] = fmt.Errorf("client %d attach: %w", i, err)
				return
			}
			fleet[i] = client{cl: cl, wl: wl}
		}()
	}
	rampWg.Wait()
	for _, err := range rampErrs {
		if err != nil {
			return err
		}
	}
	defer func() {
		for _, c := range fleet {
			if c.cl != nil {
				c.cl.Close()
			}
		}
	}()
	fmt.Fprintf(out, "ramp: %d clients connected and attached in %v\n",
		clients, time.Since(rampStart).Round(time.Millisecond))

	if cfg.metricsAddr != "" {
		reg := obs.NewRegistry()
		cliRec.RegisterMetrics(reg)
		cliM.Register(reg)
		dcfg := debugmux.Config{
			Registry:             reg,
			Tracer:               cliRec,
			BlockProfileRate:     cfg.pprofBlock,
			MutexProfileFraction: cfg.pprofMutex,
		}
		if rig != nil {
			// The self-contained run hosts the whole installation, so its
			// debug port serves the server-side views too.
			rig.lib.RegisterMetrics(reg)
			rig.fr.RegisterMetrics(reg)
			dcfg.Flight = rig.fr
			dcfg.Cluster = &cluster.Config{
				Server: rig.srv,
				Shards: []cluster.ShardSource{{Label: "perseas", Lib: rig.lib, Net: rig.ram, Guard: rig.guard}},
				Flight: rig.fr,
				Clock:  rig.clock,
			}
		}
		ml, err := net.Listen("tcp", cfg.metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer ml.Close()
		go func() { _ = (&http.Server{Handler: debugmux.Build(dcfg)}).Serve(ml) }()
		fmt.Fprintf(out, "metrics: http://%s/metrics (cluster at /debug/cluster, events at /debug/events)\n", ml.Addr())
	}

	// The committed-delta ledger and the latency histogram both collect
	// across the whole fleet.
	var ledger atomic.Int64
	var lat obs.Histogram
	counters := make([]workerCounters, clients)
	clientErrs := make([]error, clients)
	var busy atomic.Uint64
	var stop atomic.Bool
	var wg sync.WaitGroup
	seed := time.Now().UnixNano()
	start := time.Now()
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(i)))
			c := fleet[i]
			// Busy pushback backs off exponentially: with more clients
			// than engine transaction slots, most of the fleet should be
			// sleeping, not hammering the admission gate with round
			// trips.
			busyWait := time.Millisecond
			for !stop.Load() {
				t0 := time.Now()
				delta, err := c.wl.ConcurrentTxDelta(c.cl, rng)
				switch {
				case err == nil:
					lat.ObserveDuration(time.Since(t0))
					ledger.Add(delta)
					counters[i].committed.Add(1)
					busyWait = time.Millisecond
				case errors.Is(err, engine.ErrConflict):
					counters[i].aborted.Add(1)
					counters[i].conflicts.Add(1)
					time.Sleep(time.Duration(50+rng.Intn(150)) * time.Microsecond)
				case errors.Is(err, txclient.ErrBusy):
					busy.Add(1)
					time.Sleep(busyWait + time.Duration(rng.Int63n(int64(busyWait))))
					if busyWait < time.Second {
						busyWait *= 2
					}
				default:
					clientErrs[i] = fmt.Errorf(
						"after %d transactions: %w", counters[i].committed.Load(), err)
					return
				}
			}
		}()
	}

	committedNow := func() uint64 {
		var n uint64
		for i := range counters {
			n += counters[i].committed.Load()
		}
		return n
	}
	lastReport := start
	var lastTotal uint64
	chaosFired := false
	for time.Since(start) < cfg.duration {
		time.Sleep(50 * time.Millisecond)
		if rig != nil && !chaosFired && time.Since(start) > cfg.duration/2 {
			chaosFired = true
			rig.mirrors[0].srv.Crash()
			rig.mirrors[0].l.Close()
			fmt.Fprintf(out, "CHAOS: killed mirror %s under remote load\n", rig.mirrors[0].addr)
		}
		if time.Since(lastReport) >= time.Second {
			total := committedNow()
			secs := time.Since(lastReport).Seconds()
			fmt.Fprintf(out, "%8.1fs  %10.0f tx/s\n",
				time.Since(start).Seconds(), float64(total-lastTotal)/secs)
			lastTotal = total
			lastReport = time.Now()
		}
	}
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	for i, err := range clientErrs {
		if err != nil {
			return fmt.Errorf("client %d: %w", i, err)
		}
	}

	var committed, aborted, conflicts uint64
	for i := range counters {
		committed += counters[i].committed.Load()
		aborted += counters[i].aborted.Load()
		conflicts += counters[i].conflicts.Load()
	}
	snap := lat.Snapshot()
	fmt.Fprintf(out, "total: %d committed, %d aborted (%d conflicts, %d busy) in %v — %.0f tx/s, p50 %s p99 %s\n",
		committed, aborted, conflicts, busy.Load(), elapsed.Round(time.Millisecond),
		float64(committed)/elapsed.Seconds(),
		time.Duration(snap.Quantile(0.50)).Round(time.Microsecond),
		time.Duration(snap.Quantile(0.99)).Round(time.Microsecond))

	if st, err := setup.ServerStats(); err == nil {
		fmt.Fprintf(out, "server: %d conns (%d total, %d rejected), %d convoys over %d commits (batch p50 %d p99 %d max %d), %d busy, %d malformed\n",
			st.Conns, st.ConnsTotal, st.ConnsRejected, st.Convoys, st.ConvoyCommits,
			st.BatchP50, st.BatchP99, st.BatchMax, st.BusyRejected, st.MalformedFrames)
	}
	if n := cliM.BusyReplies.Load(); n > 0 {
		fmt.Fprintf(out, "client pushback: %d BUSY replies, %d begin retries, %v cumulative backoff\n",
			n, cliM.BusyRetries.Load(), time.Duration(cliM.BackoffNS.Load()).Round(time.Millisecond))
	}

	if rig != nil {
		// The guardian must have restored the replication factor, and the
		// rebuilt mirror set must agree byte for byte.
		deadline := time.Now().Add(30 * time.Second)
		for rig.ram.Live() < 2 {
			if time.Now().After(deadline) {
				return fmt.Errorf("guardian never restored the replication factor: %d/2 mirrors live", rig.ram.Live())
			}
			time.Sleep(50 * time.Millisecond)
		}
		rig.guard.Stop()
		if mm, err := rig.ram.VerifyAll(); err != nil {
			return fmt.Errorf("post-rebuild verify: %w", err)
		} else if len(mm) != 0 {
			return fmt.Errorf("post-rebuild verify: %d mirror divergences, first: %v", len(mm), mm[0])
		}
		m := rig.guard.Metrics()
		fmt.Fprintf(out, "guardian: %d death(s) detected, %d rebuild(s), replication factor restored (%d/2 live)\n",
			m.Deaths.Load(), m.Rebuilds.Load(), rig.ram.Live())
	}

	// The zero-lost-commit audit: re-attach a fresh replica and
	// reconcile the fleet's committed-delta ledger against the account
	// table's drift from its deterministic initial fill. A commit the
	// server acknowledged but dropped would break the equality in one
	// direction; a commit applied but never acknowledged in the other.
	audit, err := bench.NewDebitCredit(cfg.branches, cfg.accounts)
	if err != nil {
		return err
	}
	if err := audit.Attach(setup, 0); err != nil {
		return fmt.Errorf("audit attach: %w", err)
	}
	if err := audit.CheckConsistency(); err != nil {
		return err
	}
	if got, want := audit.AccountsDelta(), ledger.Load(); got != want {
		return fmt.Errorf("lost commits: account drift %d != committed-delta ledger %d", got, want)
	}
	fmt.Fprintf(out, "consistency: balance invariant holds; ledger reconciled (%d committed transactions, zero lost)\n", committed)

	writeTrace := func(path, side string, rec *trace.Recorder) error {
		spans := rec.Snapshot()
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("%s trace output: %w", side, err)
		}
		if err := trace.WriteChromeTrace(f, spans); err != nil {
			f.Close()
			return fmt.Errorf("write %s trace: %w", side, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "trace: %d %s span(s) written to %s (merge captures with perseas-inspect)\n",
			len(spans), side, path)
		return nil
	}
	if cfg.traceOut != "" {
		if err := writeTrace(cfg.traceOut, "client", cliRec); err != nil {
			return err
		}
	}
	if rig != nil && cfg.serverTraceOut != "" {
		if err := writeTrace(cfg.serverTraceOut, "server", rig.rec); err != nil {
			return err
		}
	}
	if rig != nil {
		if n := rig.fr.Total(); n > 0 {
			fmt.Fprintf(out, "flight: %d anomaly event(s) recorded (%d dropped from the ring)\n", n, rig.fr.Dropped())
		}
	}
	return nil
}

// buildChaosRig assembles the self-contained installation: two loopback
// mirrors plus a spare under a guardian, fronted by a tx server on a
// loopback listener.
func buildChaosRig(out io.Writer, cfg config) (*chaosRig, error) {
	rig := &chaosRig{}
	ok := false
	defer func() {
		if !ok {
			rig.Close()
		}
	}()
	// The rig is the "server process" of the run: it keeps its own span
	// recorder (process-tagged "server" so a merge with the client
	// capture stitches) and its own always-on flight recorder.
	rig.rec = trace.NewRecorder()
	rig.rec.SetProcess("server")
	if cfg.serverTraceOut != "" {
		rig.rec.Enable()
		rig.rec.SetSlowerThan(cfg.traceSlower)
	}
	rig.fr = flight.New(0)
	rig.fr.Enable()
	rig.clock = simclock.NewWall()
	rig.rec.SetClock(rig.clock)
	rig.fr.SetClock(rig.clock)
	var mirrors []netram.Mirror
	var addrs []string
	for i := 0; i < 2; i++ {
		srv := memserver.New(memserver.WithLabel(fmt.Sprintf("local-%d", i)))
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		go func() { _ = transport.Serve(l, srv) }()
		rig.mirrors = append(rig.mirrors, mirrorHandle{addr: l.Addr().String(), srv: srv, l: l})
		rig.closers = append(rig.closers, l)
		tr, err := transport.DialTCP(l.Addr().String())
		if err != nil {
			return nil, err
		}
		rig.closers = append(rig.closers, tr)
		tr.SetTracer(rig.rec)
		mirrors = append(mirrors, netram.Mirror{Name: l.Addr().String(), T: tr})
		addrs = append(addrs, l.Addr().String())
	}
	ram, err := netram.NewClient(mirrors)
	if err != nil {
		return nil, err
	}
	rig.ram = ram
	ram.SetTracer(rig.rec)
	ram.SetFlight(rig.fr)
	lib, err := core.Init(ram, rig.clock, core.WithTracer(rig.rec))
	if err != nil {
		return nil, err
	}
	rig.lib = lib

	spareSrv := memserver.New(memserver.WithLabel("spare-0"))
	sl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go func() { _ = transport.Serve(sl, spareSrv) }()
	rig.closers = append(rig.closers, sl)
	str, err := transport.DialTCP(sl.Addr().String())
	if err != nil {
		return nil, err
	}
	rig.closers = append(rig.closers, str)
	rig.guard, err = guardian.New(ram, simclock.NewWall(), guardian.Config{
		Interval: 50 * time.Millisecond,
		Misses:   3,
		Spares:   []netram.Mirror{{Name: "spare " + sl.Addr().String(), T: str}},
		OnEvent: func(ev guardian.Event) {
			fmt.Fprintf(out, "GUARDIAN: mirror %s: %s -> %s\n", ev.Mirror, ev.From, ev.To)
		},
	})
	if err != nil {
		return nil, err
	}
	rig.guard.SetTracer(rig.rec)
	rig.guard.SetFlight(rig.fr)
	if err := rig.guard.Start(); err != nil {
		return nil, err
	}

	srv := txserver.New(lib, txserver.WithTracer(rig.rec), txserver.WithFlightRecorder(rig.fr))
	rig.srv = srv
	fl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	rig.closers = append(rig.closers, fl)
	go func() { _ = srv.Serve(fl) }()
	rig.addr = fl.Addr().String()
	fmt.Fprintf(out, "self-contained tx server on %s (mirrors %s, spare %s)\n",
		rig.addr, strings.Join(addrs, ", "), sl.Addr())
	ok = true
	return rig, nil
}
