package main

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ics-forth/perseas/internal/core"
	"github.com/ics-forth/perseas/internal/engine"
	"github.com/ics-forth/perseas/internal/fault"
	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/obs"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/transport"
)

// Recover-chaos parameters. The ledger is deliberately small: the run
// audits correctness (no lost commits, conserved balances), not
// throughput, and a small account set forces write conflicts so the
// crash window holds both committed and rolled-back transactions.
const (
	recoverAccounts    = 128
	recoverInitBalance = 1000
	recoverDBName      = "recover.ledger"
)

// runRecoverChaos is the recovery-under-chaos mode: drive a bank ledger
// over real loopback TCP mirrors, power-fail the primary mid-load with
// transactions in flight, re-attach with -recover-parallel workers, and
// audit that recovery lost nothing — every acked commit survived, the
// total balance is conserved, and the mirrors agree byte for byte.
func runRecoverChaos(out io.Writer, cfg config) error {
	if cfg.workers < 1 {
		return fmt.Errorf("need at least 1 worker, got %d", cfg.workers)
	}
	if cfg.recoverParallel < 1 {
		return fmt.Errorf("need -recover-parallel >= 1, got %d", cfg.recoverParallel)
	}
	out = &syncWriter{w: out}

	var addrs []string
	for i := 0; i < 3; i++ {
		srv := memserver.New(memserver.WithLabel(fmt.Sprintf("local-%d", i)))
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		go func() { _ = transport.Serve(l, srv) }()
		defer l.Close()
		addrs = append(addrs, l.Addr().String())
	}
	fmt.Fprintf(out, "recover-chaos: mirrors: %s\n", strings.Join(addrs, ", "))

	clock := simclock.NewWall()
	ram, err := dialMirrors(addrs)
	if err != nil {
		return err
	}
	lib, err := core.Init(ram, clock)
	if err != nil {
		return err
	}

	db, err := lib.CreateDB(recoverDBName, recoverAccounts*8)
	if err != nil {
		return err
	}
	if err := lib.Update(func(tx *core.Tx) error {
		buf, err := tx.Writable(db, 0, recoverAccounts*8)
		if err != nil {
			return err
		}
		for i := 0; i < recoverAccounts; i++ {
			binary.BigEndian.PutUint64(buf[i*8:], recoverInitBalance)
		}
		return nil
	}); err != nil {
		return fmt.Errorf("seed ledger: %w", err)
	}
	const wantTotal = uint64(recoverAccounts * recoverInitBalance)
	fmt.Fprintf(out, "recover-chaos: ledger: %d accounts, total balance %d, %d workers\n",
		recoverAccounts, wantTotal, cfg.workers)

	// lastAcked tracks the highest transaction id whose Commit returned
	// success to a worker — the durability contract recovery must honour.
	var lastAcked atomic.Uint64
	var crashed atomic.Bool
	counters := make([]workerCounters, cfg.workers)
	workerErrs := make([]error, cfg.workers)
	var wg sync.WaitGroup
	seed := time.Now().UnixNano()
	for i := 0; i < cfg.workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(i)))
			for {
				err := transferOnce(lib, db, rng)
				switch {
				case err == nil:
					counters[i].committed.Add(1)
				case errors.Is(err, engine.ErrConflict):
					counters[i].aborted.Add(1)
					counters[i].conflicts.Add(1)
					time.Sleep(time.Duration(50+rng.Intn(150)) * time.Microsecond)
				case crashed.Load():
					// The power failure races worker commits by design;
					// everything after it is the crash being observed.
					return
				default:
					workerErrs[i] = fmt.Errorf(
						"after %d transactions: %w", counters[i].committed.Load(), err)
					return
				}
				if err == nil {
					// Commit acked: the id is durable on every mirror.
					if id := lib.CommittedTxID(); id > 0 {
						storeMax(&lastAcked, id)
					}
				}
			}
		}()
	}

	loadFor := cfg.duration / 2
	if loadFor <= 0 {
		loadFor = time.Second
	}
	time.Sleep(loadFor)
	crashed.Store(true)
	if err := lib.Crash(fault.CrashPower); err != nil {
		return fmt.Errorf("crash primary: %w", err)
	}
	wg.Wait()
	ram.Close()
	for i, err := range workerErrs {
		if err != nil {
			return fmt.Errorf("worker %d: %w", i, err)
		}
	}
	var committed, conflicts uint64
	for i := range counters {
		committed += counters[i].committed.Load()
		conflicts += counters[i].conflicts.Load()
	}
	fmt.Fprintf(out, "recover-chaos: CHAOS: power-failed the primary after %v with transactions in flight (%d committed, %d conflicts, last acked tx id %d)\n",
		loadFor, committed, conflicts, lastAcked.Load())

	// Re-attach over fresh connections, as a restarted primary would.
	ram2, err := dialMirrors(addrs)
	if err != nil {
		return err
	}
	defer ram2.Close()
	opts := []core.Option{}
	if cfg.recoverParallel > 1 {
		opts = append(opts, core.WithRecoveryParallelism(cfg.recoverParallel))
	}
	start := time.Now()
	lib2, err := core.Attach(ram2, simclock.NewWall(), opts...)
	if err != nil {
		return fmt.Errorf("recover: %w", err)
	}
	recoverWall := time.Since(start)
	defer lib2.Close()
	fmt.Fprintf(out, "recover-chaos: recovered in %v with parallelism %d\n",
		recoverWall.Round(time.Microsecond), cfg.recoverParallel)
	obs.WriteLatencyTable(out, "recovery phases", lib2.RecoveryLatencyRows())

	// Audit 1: durability. Every commit a worker saw acked must still be
	// committed after recovery.
	recovered := lib2.CommittedTxID()
	if acked := lastAcked.Load(); recovered < acked {
		return fmt.Errorf("recover-chaos: LOST COMMITS: recovered committed tx id %d < last acked %d", recovered, acked)
	}
	fmt.Fprintf(out, "recover-chaos: durability: recovered committed tx id %d >= last acked %d -- zero lost commits\n",
		recovered, lastAcked.Load())

	// Audit 2: conservation. Transfers move balance between accounts;
	// in-flight transactions roll back whole, so the total is invariant.
	db2, err := lib2.OpenDB(recoverDBName)
	if err != nil {
		return fmt.Errorf("reopen ledger: %w", err)
	}
	var total uint64
	img := db2.Bytes()
	for i := 0; i < recoverAccounts; i++ {
		total += binary.BigEndian.Uint64(img[i*8:])
	}
	if total != wantTotal {
		return fmt.Errorf("recover-chaos: CONSERVATION BROKEN: total balance %d, want %d", total, wantTotal)
	}
	fmt.Fprintf(out, "recover-chaos: conservation: total balance %d matches initial %d across %d accounts\n",
		total, wantTotal, recoverAccounts)

	// Audit 3: replica agreement, byte for byte.
	mm, err := ram2.VerifyAll()
	if err != nil {
		return fmt.Errorf("verify mirrors: %w", err)
	}
	if len(mm) != 0 {
		return fmt.Errorf("recover-chaos: MIRROR DIVERGENCE: %d mismatches, first: %v", len(mm), mm[0])
	}
	fmt.Fprintf(out, "recover-chaos: mirrors: VerifyAll clean across %d mirrors\n", len(addrs))

	fmt.Fprintf(out, "RECOVER-CHAOS PASS: %d commits survived a mid-load power failure; recovery took %v at parallelism %d\n",
		committed, recoverWall.Round(time.Microsecond), cfg.recoverParallel)
	return nil
}

// transferOnce moves a small amount between two distinct ledger
// accounts inside one transaction, or is a no-op commit when the source
// cannot cover the amount.
func transferOnce(lib *core.Library, db engine.DB, rng *rand.Rand) error {
	a := rng.Intn(recoverAccounts)
	b := rng.Intn(recoverAccounts - 1)
	if b >= a {
		b++
	}
	amount := uint64(1 + rng.Intn(9))
	tx, err := lib.BeginTx()
	if err != nil {
		return err
	}
	src, err := tx.Writable(db, uint64(a*8), 8)
	if err != nil {
		_ = tx.Abort()
		return err
	}
	dst, err := tx.Writable(db, uint64(b*8), 8)
	if err != nil {
		_ = tx.Abort()
		return err
	}
	if have := binary.BigEndian.Uint64(src); have >= amount {
		binary.BigEndian.PutUint64(src, have-amount)
		binary.BigEndian.PutUint64(dst, binary.BigEndian.Uint64(dst)+amount)
	}
	return tx.Commit()
}

// dialMirrors connects a fresh all-ack netram client to the given
// mirror addresses over real TCP.
func dialMirrors(addrs []string) (*netram.Client, error) {
	var mirrors []netram.Mirror
	for _, addr := range addrs {
		tr, err := transport.DialTCP(addr)
		if err != nil {
			return nil, fmt.Errorf("dial %s: %w", addr, err)
		}
		mirrors = append(mirrors, netram.Mirror{Name: addr, T: tr})
	}
	return netram.NewClient(mirrors)
}

// storeMax raises v to x if x is larger, tolerating concurrent raisers.
func storeMax(v *atomic.Uint64, x uint64) {
	for {
		cur := v.Load()
		if x <= cur || v.CompareAndSwap(cur, x) {
			return
		}
	}
}
