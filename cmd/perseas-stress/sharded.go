package main

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ics-forth/perseas/internal/bench"
	"github.com/ics-forth/perseas/internal/cluster"
	"github.com/ics-forth/perseas/internal/core"
	"github.com/ics-forth/perseas/internal/debugmux"
	"github.com/ics-forth/perseas/internal/engine"
	"github.com/ics-forth/perseas/internal/flight"
	"github.com/ics-forth/perseas/internal/guardian"
	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/obs"
	"github.com/ics-forth/perseas/internal/router"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/trace"
	"github.com/ics-forth/perseas/internal/transport"
)

// shardRig is one complete PERSEAS instance inside the sharded stress
// run: its own loopback mirror set, netram client, library and (with
// -guardian) guardian plus spare.
type shardRig struct {
	local []mirrorHandle
	addrs []string
	tcps  []*transport.TCP
	ram   *netram.Client
	lib   *core.Library
	guard *guardian.Guardian
}

// runSharded is the -shards N (N > 1) mode: N self-contained PERSEAS
// instances — each with its own mirrors, conflict table and optional
// guardian — behind the shard router, driven by the same debit-credit
// workload. The four TPC-B tables hash across the shards, so every
// transaction that spans tables on different shards takes the
// coordinator-driven cross-shard commit; with -guardian, shard 0 loses a
// mirror mid-run and its guardian must restore the replication factor
// while the other shards keep committing undisturbed.
func runSharded(out io.Writer, cfg config) error {
	if cfg.workers < 1 {
		return fmt.Errorf("need at least 1 worker, got %d", cfg.workers)
	}
	if cfg.servers != "" {
		return fmt.Errorf("-shards %d is self-contained only; drop -servers", cfg.shards)
	}
	if cfg.chaos && cfg.guardian {
		return fmt.Errorf("-chaos and -guardian are mutually exclusive")
	}
	out = &syncWriter{w: out}
	nLocal := 2
	if cfg.guardian {
		nLocal = 3
	}

	rec := trace.NewRecorder()
	if cfg.traceOut != "" {
		rec.Enable()
		rec.SetSlowerThan(cfg.traceSlower)
	}
	// One flight recorder spans every shard: anomaly events carry their
	// source, so a shared ring preserves cross-shard ordering.
	fr := flight.New(0)
	fr.Enable()
	clock := simclock.NewWall()
	rec.SetClock(clock)
	fr.SetClock(clock)

	rigs := make([]*shardRig, cfg.shards)
	libs := make([]*core.Library, cfg.shards)
	for s := range rigs {
		rig := &shardRig{}
		for i := 0; i < nLocal; i++ {
			srv := memserver.New(memserver.WithLabel(fmt.Sprintf("shard%d-local-%d", s, i)))
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return err
			}
			go func() { _ = transport.Serve(l, srv) }()
			defer l.Close()
			rig.local = append(rig.local, mirrorHandle{addr: l.Addr().String(), srv: srv, l: l})
			rig.addrs = append(rig.addrs, l.Addr().String())
		}
		var mirrors []netram.Mirror
		for _, addr := range rig.addrs {
			tr, err := transport.DialTCP(addr)
			if err != nil {
				return fmt.Errorf("shard %d: dial %s: %w", s, addr, err)
			}
			defer tr.Close()
			tr.SetTracer(rec)
			mirrors = append(mirrors, netram.Mirror{Name: addr, T: tr})
			rig.tcps = append(rig.tcps, tr)
		}
		var nopts []netram.Option
		if cfg.quorum > 0 {
			nopts = append(nopts, netram.WithQuorum(cfg.quorum))
		}
		ram, err := netram.NewClient(mirrors, nopts...)
		if err != nil {
			return err
		}
		ram.SetTracer(rec)
		ram.SetFlight(fr)
		rig.ram = ram
		lib, err := core.Init(ram, clock, core.WithTracer(rec))
		if err != nil {
			return err
		}
		rig.lib = lib
		libs[s] = lib
		fmt.Fprintf(out, "shard %d mirrors: %s\n", s, strings.Join(rig.addrs, ", "))

		if cfg.guardian {
			spareSrv := memserver.New(memserver.WithLabel(fmt.Sprintf("shard%d-spare-0", s)))
			sl, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return err
			}
			go func() { _ = transport.Serve(sl, spareSrv) }()
			defer sl.Close()
			str, err := transport.DialTCP(sl.Addr().String())
			if err != nil {
				return fmt.Errorf("shard %d: dial spare %s: %w", s, sl.Addr(), err)
			}
			defer str.Close()
			s := s
			guard, err := guardian.New(ram, simclock.NewWall(), guardian.Config{
				Interval: 50 * time.Millisecond,
				Misses:   3,
				Spares:   []netram.Mirror{{Name: "spare " + sl.Addr().String(), T: str}},
				OnEvent: func(ev guardian.Event) {
					fmt.Fprintf(out, "GUARDIAN: mirror %s: %s -> %s (shard %d)\n", ev.Mirror, ev.From, ev.To, s)
				},
			})
			if err != nil {
				return err
			}
			guard.SetTracer(rec)
			guard.SetFlight(fr)
			rig.guard = guard
			fmt.Fprintf(out, "guardian: watching shard %d's %d mirrors, spare at %s\n", s, nLocal, sl.Addr())
			if err := guard.Start(); err != nil {
				return err
			}
			defer guard.Stop()
		}
		rigs[s] = rig
	}

	r, err := router.New(libs)
	if err != nil {
		return err
	}
	r.SetFlight(fr)

	reg := obs.NewRegistry()
	r.RegisterMetrics(reg) // router counters + per-shard prefixed library series
	rec.RegisterMetrics(reg)
	fr.RegisterMetrics(reg)
	for s, rig := range rigs {
		for i, tr := range rig.tcps {
			tr.RegisterMetrics(reg, fmt.Sprintf("perseas_tcp_shard%d_mirror%d", s, i))
		}
	}
	if cfg.metricsAddr != "" {
		ml, err := net.Listen("tcp", cfg.metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer ml.Close()
		shards := make([]cluster.ShardSource, len(rigs))
		for s, rig := range rigs {
			shards[s] = cluster.ShardSource{
				Label: fmt.Sprintf("shard%d", s),
				Lib:   rig.lib,
				Net:   rig.ram,
				Guard: rig.guard,
			}
		}
		mux := debugmux.Build(debugmux.Config{
			Registry:             reg,
			Tracer:               rec,
			Flight:               fr,
			Cluster:              &cluster.Config{Shards: shards, Flight: fr, Clock: clock},
			BlockProfileRate:     cfg.pprofBlock,
			MutexProfileFraction: cfg.pprofMutex,
		})
		go func() { _ = (&http.Server{Handler: mux}).Serve(ml) }()
		fmt.Fprintf(out, "metrics: http://%s/metrics (cluster at /debug/cluster, events at /debug/events)\n", ml.Addr())
	}

	w, err := bench.NewDebitCredit(cfg.branches, 1000)
	if err != nil {
		return err
	}
	if err := w.Setup(r); err != nil {
		return err
	}
	byShard := make(map[int][]string)
	for _, table := range []string{"accounts", "tellers", "branches", "history"} {
		s := r.ShardFor(table)
		byShard[s] = append(byShard[s], table)
	}
	for s := 0; s < cfg.shards; s++ {
		fmt.Fprintf(out, "placement: shard %d holds [%s]\n", s, strings.Join(byShard[s], " "))
	}
	fmt.Fprintf(out, "database: %d bytes across 4 tables, %d shards x %d mirrors, %d workers\n",
		w.DBBytes(), cfg.shards, nLocal, cfg.workers)

	counters := make([]workerCounters, cfg.workers)
	workerErrs := make([]error, cfg.workers)
	var stop atomic.Bool
	var wg sync.WaitGroup
	seed := time.Now().UnixNano()
	start := time.Now()
	for i := 0; i < cfg.workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(i)))
			for !stop.Load() {
				switch err := w.ConcurrentTx(r, rng); {
				case err == nil:
					counters[i].committed.Add(1)
				case errors.Is(err, engine.ErrConflict):
					counters[i].aborted.Add(1)
					counters[i].conflicts.Add(1)
					time.Sleep(time.Duration(50+rng.Intn(150)) * time.Microsecond)
				default:
					workerErrs[i] = fmt.Errorf(
						"after %d transactions: %w", counters[i].committed.Load(), err)
					return
				}
			}
		}()
	}

	committedNow := func() uint64 {
		var n uint64
		for i := range counters {
			n += counters[i].committed.Load()
		}
		return n
	}
	liveNow := func() int {
		var n int
		for _, rig := range rigs {
			n += rig.ram.Live()
		}
		return n
	}
	lastReport := start
	lastStats := start
	var lastTotal uint64
	chaosFired := false
	for time.Since(start) < cfg.duration {
		time.Sleep(50 * time.Millisecond)
		if (cfg.chaos || cfg.guardian) && !chaosFired && time.Since(start) > cfg.duration/2 {
			chaosFired = true
			rigs[0].local[0].srv.Crash()
			rigs[0].local[0].l.Close()
			fmt.Fprintf(out, "CHAOS: killed mirror %s mid-run (shard 0)\n", rigs[0].local[0].addr)
		}
		if time.Since(lastReport) >= time.Second {
			total := committedNow()
			secs := time.Since(lastReport).Seconds()
			fmt.Fprintf(out, "%8.1fs  %10.0f tx/s  (live mirrors: %d/%d)\n",
				time.Since(start).Seconds(), float64(total-lastTotal)/secs, liveNow(), cfg.shards*nLocal)
			lastTotal = total
			lastReport = time.Now()
		}
		if cfg.statsEvery > 0 && time.Since(lastStats) >= cfg.statsEvery {
			obs.WriteLatencyTable(out, "commit path", r.CommitLatencyRows())
			lastStats = time.Now()
		}
	}
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	for i, err := range workerErrs {
		if err != nil {
			return fmt.Errorf("worker %d: %w", i, err)
		}
	}

	var committed, aborted, conflicts uint64
	for i := range counters {
		c, a, cf := counters[i].committed.Load(), counters[i].aborted.Load(), counters[i].conflicts.Load()
		fmt.Fprintf(out, "worker %2d: %8d committed  %6d aborted  %6d conflicts\n", i, c, a, cf)
		committed += c
		aborted += a
		conflicts += cf
	}
	fmt.Fprintf(out, "total: %d committed, %d aborted (%d conflicts) in %v (%.0f tx/s over real TCP)\n",
		committed, aborted, conflicts, elapsed.Round(time.Millisecond),
		float64(committed)/elapsed.Seconds())
	st := r.Stats()
	fmt.Fprintf(out, "router: %d single-shard commits, %d cross-shard commits, %d cross-shard aborts\n",
		st.SingleShardCommits, st.CrossShardCommits, st.CrossShardAborts)

	obs.WriteLatencyTable(out, "commit path", r.CommitLatencyRows())
	var batch obs.HistogramSnapshot
	for _, rig := range rigs {
		for _, tr := range rig.tcps {
			batch = batch.Merge(tr.Metrics().BatchSize.Snapshot())
		}
	}
	obs.WriteValueDistribution(out, "combiner batch size (writes/exchange)", batch)

	if cfg.guardian {
		for s, rig := range rigs {
			deadline := time.Now().Add(30 * time.Second)
			for rig.ram.Live() < nLocal {
				if time.Now().After(deadline) {
					return fmt.Errorf("shard %d: guardian never restored the replication factor: %d/%d mirrors live",
						s, rig.ram.Live(), nLocal)
				}
				time.Sleep(50 * time.Millisecond)
			}
			rig.guard.Stop()
			fmt.Fprintf(out, "shard %d MIRRORS:\n", s)
			for _, row := range rig.guard.Status() {
				fmt.Fprintf(out, "  %d %-28s %-10s deaths=%d rebuilt=%d bytes\n",
					row.Slot, row.Mirror, row.State, row.Deaths, row.RebuildBytes)
			}
			if mm, err := rig.ram.VerifyAll(); err != nil {
				return fmt.Errorf("shard %d: post-rebuild verify: %w", s, err)
			} else if len(mm) != 0 {
				return fmt.Errorf("shard %d: post-rebuild verify: %d mirror divergences, first: %v", s, len(mm), mm[0])
			}
			m := rig.guard.Metrics()
			fmt.Fprintf(out, "shard %d guardian: %d death(s) detected, %d rebuild(s), replication factor restored (%d/%d live)\n",
				s, m.Deaths.Load(), m.Rebuilds.Load(), rig.ram.Live(), nLocal)
		}
	}

	if cfg.traceOut != "" {
		spans := rec.Snapshot()
		f, err := os.Create(cfg.traceOut)
		if err != nil {
			return fmt.Errorf("trace output: %w", err)
		}
		if err := trace.WriteChromeTrace(f, spans); err != nil {
			f.Close()
			return fmt.Errorf("write trace: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "trace: %d span(s) written to %s (open at ui.perfetto.dev)\n",
			len(spans), cfg.traceOut)
		trace.WriteSlowestReport(out, spans, 5)
	}

	if n := fr.Total(); n > 0 {
		fmt.Fprintf(out, "flight: %d anomaly event(s) recorded (%d dropped from the ring)\n", n, fr.Dropped())
	}

	if err := w.CheckConsistency(); err != nil {
		return err
	}
	fmt.Fprintln(out, "consistency: balance invariant holds")
	return nil
}
