// Command perseas-stress drives a live PERSEAS deployment hard and
// reports sustained throughput — the tool to run after racking two
// mirror machines to see what the installation actually delivers.
//
// It either dials running perseas-server processes:
//
//	perseas-stress -servers host1:7070,host2:7070 -duration 10s
//
// or, with -selfcontained, spawns loopback TCP mirrors of its own. The
// workload is the paper's debit-credit; stats print once per second.
// With -chaos, one mirror is killed halfway through and the run must
// finish on the survivor — a live demonstration of the availability
// claim.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"strings"
	"time"

	"github.com/ics-forth/perseas/internal/bench"
	"github.com/ics-forth/perseas/internal/core"
	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/transport"
)

func main() {
	servers := flag.String("servers", "", "comma-separated mirror addresses (empty with -selfcontained)")
	selfContained := flag.Bool("selfcontained", false, "spawn loopback mirror servers")
	duration := flag.Duration("duration", 10*time.Second, "how long to run")
	chaos := flag.Bool("chaos", false, "kill one self-contained mirror halfway through")
	branches := flag.Int("branches", 4, "debit-credit scale")
	flag.Parse()

	if err := run(os.Stdout, *servers, *selfContained, *duration, *chaos, *branches); err != nil {
		fmt.Fprintln(os.Stderr, "perseas-stress:", err)
		os.Exit(1)
	}
}

type mirrorHandle struct {
	addr string
	srv  *memserver.Server
	l    net.Listener
}

func run(out io.Writer, servers string, selfContained bool, duration time.Duration, chaos bool, branches int) error {
	var addrs []string
	var local []mirrorHandle
	if selfContained {
		for i := 0; i < 2; i++ {
			srv := memserver.New(memserver.WithLabel(fmt.Sprintf("local-%d", i)))
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return err
			}
			go func() { _ = transport.Serve(l, srv) }()
			defer l.Close()
			local = append(local, mirrorHandle{addr: l.Addr().String(), srv: srv, l: l})
			addrs = append(addrs, l.Addr().String())
		}
		fmt.Fprintf(out, "self-contained mirrors: %s\n", strings.Join(addrs, ", "))
	} else {
		for _, a := range strings.Split(servers, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		if len(addrs) == 0 {
			return fmt.Errorf("no servers given (use -servers or -selfcontained)")
		}
	}
	if chaos && len(local) < 2 {
		return fmt.Errorf("-chaos requires -selfcontained")
	}

	var mirrors []netram.Mirror
	for _, addr := range addrs {
		tr, err := transport.DialTCP(addr)
		if err != nil {
			return fmt.Errorf("dial %s: %w", addr, err)
		}
		defer tr.Close()
		mirrors = append(mirrors, netram.Mirror{Name: addr, T: tr})
	}
	ram, err := netram.NewClient(mirrors)
	if err != nil {
		return err
	}
	lib, err := core.Init(ram, simclock.NewWall())
	if err != nil {
		return err
	}

	w, err := bench.NewDebitCredit(branches, 1000)
	if err != nil {
		return err
	}
	if err := w.Setup(lib); err != nil {
		return err
	}
	fmt.Fprintf(out, "database: %d bytes across 4 tables, %d mirrors\n", w.DBBytes(), len(addrs))

	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	start := time.Now()
	lastReport := start
	var total, window uint64
	chaosFired := false
	for time.Since(start) < duration {
		if err := w.Tx(lib, rng); err != nil {
			return fmt.Errorf("after %d transactions: %w", total, err)
		}
		total++
		window++
		if chaos && !chaosFired && time.Since(start) > duration/2 {
			chaosFired = true
			local[0].srv.Crash()
			local[0].l.Close()
			fmt.Fprintf(out, "CHAOS: killed mirror %s mid-run\n", local[0].addr)
		}
		if time.Since(lastReport) >= time.Second {
			secs := time.Since(lastReport).Seconds()
			fmt.Fprintf(out, "%8.1fs  %10.0f tx/s  (live mirrors: %d)\n",
				time.Since(start).Seconds(), float64(window)/secs, ram.Live())
			window = 0
			lastReport = time.Now()
		}
	}
	elapsed := time.Since(start)
	fmt.Fprintf(out, "total: %d transactions in %v (%.0f tx/s over real TCP)\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	if err := w.CheckConsistency(); err != nil {
		return err
	}
	fmt.Fprintln(out, "consistency: balance invariant holds")
	return nil
}
