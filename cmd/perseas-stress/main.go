// Command perseas-stress drives a live PERSEAS deployment hard and
// reports sustained throughput — the tool to run after racking two
// mirror machines to see what the installation actually delivers.
//
// It either dials running perseas-server processes:
//
//	perseas-stress -servers host1:7070,host2:7070 -duration 10s
//
// or, with -selfcontained, spawns loopback TCP mirrors of its own. The
// workload is the paper's debit-credit; stats print once per second.
// With -workers N, N goroutines run concurrent transaction handles
// against the same library and their commits interleave on the wire.
// With -chaos, one mirror is killed halfway through and the run must
// finish on the survivor — a live demonstration of the availability
// claim. With -guardian, the run is self-contained with three mirrors
// plus a spare node and a guardian watching them: one mirror is killed
// halfway through, the guardian detects the death, rebuilds onto the
// spare while transactions keep committing, and the run must end with
// the replication factor restored and zero lost commits.
//
// With -shards N (N > 1), the run is self-contained and the namespace is
// partitioned across N complete PERSEAS instances behind the shard
// router, each with its own mirror set and — with -guardian — its own
// guardian and spare; transactions spanning tables on different shards
// take the coordinator-driven cross-shard commit, and the chaos kill
// hits shard 0 while the other shards keep committing undisturbed.
//
// Every run ends with the commit-path latency breakdown (the paper's
// Fig. 3 phases, p50/p95/p99) and the write combiner's batch-size
// distribution. -stats-every 1s additionally dumps the latency table
// periodically mid-run, and -metrics-addr :9090 serves all counters in
// Prometheus text form at /metrics for the duration of the run.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ics-forth/perseas/internal/bench"
	"github.com/ics-forth/perseas/internal/cluster"
	"github.com/ics-forth/perseas/internal/core"
	"github.com/ics-forth/perseas/internal/debugmux"
	"github.com/ics-forth/perseas/internal/engine"
	"github.com/ics-forth/perseas/internal/flight"
	"github.com/ics-forth/perseas/internal/guardian"
	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/obs"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/trace"
	"github.com/ics-forth/perseas/internal/transport"
)

// config collects the run parameters so tests can call run directly.
type config struct {
	servers       string
	selfContained bool
	duration      time.Duration
	chaos         bool
	guardian      bool
	branches      int
	workers       int
	shards        int
	quorum        int
	statsEvery    time.Duration
	metricsAddr   string
	traceOut      string
	traceSlower   time.Duration
	remote        string
	remoteChaos   bool
	clients       int
	accounts      int
	// serverTraceOut captures the in-process tx server's spans on a
	// -remote-chaos run, so the client capture in traceOut and this file
	// merge into stitched cross-process transactions.
	serverTraceOut string
	// pprofBlock/pprofMutex enable the blocking and mutex-contention
	// profiles on the metrics mux at the given sampling rate/fraction.
	pprofBlock int
	pprofMutex int
	// recoverChaos runs the recovery-under-chaos audit: power-fail the
	// primary mid-load, re-attach with recoverParallel recovery workers,
	// and prove zero lost commits.
	recoverChaos    bool
	recoverParallel int
}

func main() {
	var cfg config
	flag.StringVar(&cfg.servers, "servers", "", "comma-separated mirror addresses (empty with -selfcontained)")
	flag.BoolVar(&cfg.selfContained, "selfcontained", false, "spawn loopback mirror servers")
	flag.DurationVar(&cfg.duration, "duration", 10*time.Second, "how long to run")
	flag.BoolVar(&cfg.chaos, "chaos", false, "kill one self-contained mirror halfway through")
	flag.BoolVar(&cfg.guardian, "guardian", false, "self-contained 3-mirror run with a spare: kill a mirror mid-run and let the guardian restore the replication factor")
	// TPC-B scales branches with offered load; 16 keeps 4+ workers from
	// serialising on a handful of branch rows.
	flag.IntVar(&cfg.branches, "branches", 16, "debit-credit scale")
	flag.IntVar(&cfg.workers, "workers", 1, "concurrent transaction workers")
	flag.IntVar(&cfg.shards, "shards", 1, "partition the namespace across this many self-contained PERSEAS instances behind the shard router")
	flag.IntVar(&cfg.quorum, "quorum", 0, "commit at this many mirror acks instead of all of them; stragglers catch up asynchronously (0 = all-ack)")
	flag.DurationVar(&cfg.statsEvery, "stats-every", 0, "dump the commit-path latency table this often mid-run (0 = only at the end)")
	flag.StringVar(&cfg.metricsAddr, "metrics-addr", "", "serve Prometheus metrics on this address for the run (e.g. :9090)")
	flag.StringVar(&cfg.traceOut, "trace-out", "", "write per-transaction spans as Chrome/Perfetto trace-event JSON to this file at the end of the run")
	flag.DurationVar(&cfg.traceSlower, "trace-slower-than", 0, "keep only transactions at least this slow in the trace (0 = keep all)")
	flag.StringVar(&cfg.remote, "remote", "", "drive a perseas-server -tx front door at this address with simulated client processes")
	flag.BoolVar(&cfg.remoteChaos, "remote-chaos", false, "self-contained -remote run: in-process tx server over loopback mirrors with a guardian; kill a mirror mid-run and prove zero lost commits")
	flag.IntVar(&cfg.clients, "clients", 64, "-remote: how many independent clients (each its own replica and connection) to simulate")
	flag.IntVar(&cfg.accounts, "accounts", 1000, "-remote: debit-credit accounts per branch (smaller replicas let more clients fit)")
	flag.StringVar(&cfg.serverTraceOut, "server-trace-out", "", "-remote-chaos: write the in-process server's spans here (merge with -trace-out via perseas-inspect)")
	flag.IntVar(&cfg.pprofBlock, "pprof-block", 0, "goroutine blocking profile sample rate for /debug/pprof/block on -metrics-addr (0 = off)")
	flag.IntVar(&cfg.pprofMutex, "pprof-mutex", 0, "mutex contention profile fraction for /debug/pprof/mutex on -metrics-addr (0 = off)")
	flag.BoolVar(&cfg.recoverChaos, "recover-chaos", false, "self-contained audit: power-fail the primary mid-load with transactions in flight, recover, and prove zero lost commits")
	flag.IntVar(&cfg.recoverParallel, "recover-parallel", 4, "-recover-chaos: recovery parallelism for the re-attach (1 = the serial recovery path)")
	flag.Parse()

	if err := run(os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "perseas-stress:", err)
		os.Exit(1)
	}
}

type mirrorHandle struct {
	addr string
	srv  *memserver.Server
	l    net.Listener
}

// syncWriter serialises output lines: the per-second reporter and the
// guardian's event callback write concurrently.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// workerCounters is one worker's outcome tally, updated atomically so
// the per-second reporter can read it live.
type workerCounters struct {
	committed atomic.Uint64
	aborted   atomic.Uint64
	conflicts atomic.Uint64
}

func run(out io.Writer, cfg config) error {
	if cfg.recoverChaos {
		return runRecoverChaos(out, cfg)
	}
	if cfg.remote != "" || cfg.remoteChaos {
		return runRemote(out, cfg)
	}
	if cfg.shards > 1 {
		return runSharded(out, cfg)
	}
	if cfg.workers < 1 {
		return fmt.Errorf("need at least 1 worker, got %d", cfg.workers)
	}
	out = &syncWriter{w: out}
	if cfg.guardian {
		cfg.selfContained = true // the guardian run owns its own rig
	}
	nLocal := 2
	if cfg.guardian {
		nLocal = 3
	}
	var addrs []string
	var local []mirrorHandle
	if cfg.selfContained {
		for i := 0; i < nLocal; i++ {
			srv := memserver.New(memserver.WithLabel(fmt.Sprintf("local-%d", i)))
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return err
			}
			go func() { _ = transport.Serve(l, srv) }()
			defer l.Close()
			local = append(local, mirrorHandle{addr: l.Addr().String(), srv: srv, l: l})
			addrs = append(addrs, l.Addr().String())
		}
		fmt.Fprintf(out, "self-contained mirrors: %s\n", strings.Join(addrs, ", "))
	} else {
		for _, a := range strings.Split(cfg.servers, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		if len(addrs) == 0 {
			return fmt.Errorf("no servers given (use -servers or -selfcontained)")
		}
	}
	if cfg.chaos && len(local) < 2 {
		return fmt.Errorf("-chaos requires -selfcontained")
	}
	if cfg.chaos && cfg.guardian {
		return fmt.Errorf("-chaos and -guardian are mutually exclusive")
	}

	// The span recorder exists unconditionally (mounted at /debug/traces)
	// but records only when -trace-out asks for a capture; disabled it
	// costs one atomic load per instrumentation point.
	rec := trace.NewRecorder()
	if cfg.traceOut != "" {
		rec.Enable()
		rec.SetSlowerThan(cfg.traceSlower)
	}
	// The flight recorder is always on: anomalies are rare by
	// definition, so the ring stays cheap, and a run that hit mirror
	// retries or admission pushback can explain itself afterwards.
	fr := flight.New(0)
	fr.Enable()
	clock := simclock.NewWall()
	rec.SetClock(clock)
	fr.SetClock(clock)

	var mirrors []netram.Mirror
	var tcps []*transport.TCP
	for _, addr := range addrs {
		tr, err := transport.DialTCP(addr)
		if err != nil {
			return fmt.Errorf("dial %s: %w", addr, err)
		}
		defer tr.Close()
		tr.SetTracer(rec)
		mirrors = append(mirrors, netram.Mirror{Name: addr, T: tr})
		tcps = append(tcps, tr)
	}
	var nopts []netram.Option
	if cfg.quorum > 0 {
		nopts = append(nopts, netram.WithQuorum(cfg.quorum))
	}
	ram, err := netram.NewClient(mirrors, nopts...)
	if err != nil {
		return err
	}
	ram.SetTracer(rec)
	ram.SetFlight(fr)
	if cfg.quorum > 0 {
		fmt.Fprintf(out, "durability: quorum %d of %d mirrors (stragglers catch up asynchronously)\n", cfg.quorum, len(mirrors))
	} else {
		fmt.Fprintf(out, "durability: all-ack (%d mirrors)\n", len(mirrors))
	}
	lib, err := core.Init(ram, clock, core.WithTracer(rec))
	if err != nil {
		return err
	}

	// The guardian rig adds a standby node and a failure detector over
	// the mirror set.
	var guard *guardian.Guardian
	if cfg.guardian {
		spareSrv := memserver.New(memserver.WithLabel("spare-0"))
		sl, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		go func() { _ = transport.Serve(sl, spareSrv) }()
		defer sl.Close()
		str, err := transport.DialTCP(sl.Addr().String())
		if err != nil {
			return fmt.Errorf("dial spare %s: %w", sl.Addr(), err)
		}
		defer str.Close()
		lagLimit := 0
		if cfg.quorum > 0 {
			// Lag-aware health: a reachable mirror drowning in catch-up
			// work gets rebuilt instead of silently eroding durability.
			lagLimit = 48
		}
		guard, err = guardian.New(ram, simclock.NewWall(), guardian.Config{
			Interval: 50 * time.Millisecond,
			Misses:   3,
			LagLimit: lagLimit,
			Spares:   []netram.Mirror{{Name: "spare " + sl.Addr().String(), T: str}},
			OnEvent: func(ev guardian.Event) {
				fmt.Fprintf(out, "GUARDIAN: mirror %s: %s -> %s\n", ev.Mirror, ev.From, ev.To)
			},
		})
		if err != nil {
			return err
		}
		guard.SetTracer(rec)
		guard.SetFlight(fr)
		fmt.Fprintf(out, "guardian: watching %d mirrors, spare at %s\n", len(addrs), sl.Addr())
		if err := guard.Start(); err != nil {
			return err
		}
		defer guard.Stop()
	}

	reg := obs.NewRegistry()
	lib.RegisterMetrics(reg)
	rec.RegisterMetrics(reg)
	fr.RegisterMetrics(reg)
	if guard != nil {
		guard.RegisterMetrics(reg)
	}
	for i, tr := range tcps {
		tr.RegisterMetrics(reg, fmt.Sprintf("perseas_tcp_mirror%d", i))
	}
	if cfg.metricsAddr != "" {
		ml, err := net.Listen("tcp", cfg.metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer ml.Close()
		mux := debugmux.Build(debugmux.Config{
			Registry: reg,
			Tracer:   rec,
			Flight:   fr,
			Cluster: &cluster.Config{
				Shards: []cluster.ShardSource{{Label: "perseas", Lib: lib, Net: ram, Guard: guard}},
				Flight: fr,
				Clock:  clock,
			},
			BlockProfileRate:     cfg.pprofBlock,
			MutexProfileFraction: cfg.pprofMutex,
		})
		go func() { _ = (&http.Server{Handler: mux}).Serve(ml) }()
		fmt.Fprintf(out, "metrics: http://%s/metrics (cluster at /debug/cluster, events at /debug/events)\n", ml.Addr())
	}

	w, err := bench.NewDebitCredit(cfg.branches, 1000)
	if err != nil {
		return err
	}
	if err := w.Setup(lib); err != nil {
		return err
	}
	fmt.Fprintf(out, "database: %d bytes across 4 tables, %d mirrors, %d workers\n",
		w.DBBytes(), len(addrs), cfg.workers)

	counters := make([]workerCounters, cfg.workers)
	workerErrs := make([]error, cfg.workers)
	var stop atomic.Bool
	var wg sync.WaitGroup
	seed := time.Now().UnixNano()
	start := time.Now()
	for i := 0; i < cfg.workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(i)))
			for !stop.Load() {
				switch err := w.ConcurrentTx(lib, rng); {
				case err == nil:
					counters[i].committed.Add(1)
				case errors.Is(err, engine.ErrConflict):
					counters[i].aborted.Add(1)
					counters[i].conflicts.Add(1)
					// Back off briefly so the claim winner finishes with
					// the row instead of racing retries for the CPU.
					time.Sleep(time.Duration(50+rng.Intn(150)) * time.Microsecond)
				default:
					workerErrs[i] = fmt.Errorf(
						"after %d transactions: %w", counters[i].committed.Load(), err)
					return
				}
			}
		}()
	}

	committedNow := func() uint64 {
		var n uint64
		for i := range counters {
			n += counters[i].committed.Load()
		}
		return n
	}
	lastReport := start
	lastStats := start
	var lastTotal uint64
	chaosFired := false
	for time.Since(start) < cfg.duration {
		time.Sleep(50 * time.Millisecond)
		if (cfg.chaos || cfg.guardian) && !chaosFired && time.Since(start) > cfg.duration/2 {
			chaosFired = true
			local[0].srv.Crash()
			local[0].l.Close()
			fmt.Fprintf(out, "CHAOS: killed mirror %s mid-run\n", local[0].addr)
		}
		if time.Since(lastReport) >= time.Second {
			total := committedNow()
			secs := time.Since(lastReport).Seconds()
			fmt.Fprintf(out, "%8.1fs  %10.0f tx/s  (live mirrors: %d)\n",
				time.Since(start).Seconds(), float64(total-lastTotal)/secs, ram.Live())
			lastTotal = total
			lastReport = time.Now()
		}
		if cfg.statsEvery > 0 && time.Since(lastStats) >= cfg.statsEvery {
			obs.WriteLatencyTable(out, "commit path", lib.CommitLatencyRows())
			lastStats = time.Now()
		}
	}
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	for i, err := range workerErrs {
		if err != nil {
			return fmt.Errorf("worker %d: %w", i, err)
		}
	}

	var committed, aborted, conflicts uint64
	for i := range counters {
		c, a, cf := counters[i].committed.Load(), counters[i].aborted.Load(), counters[i].conflicts.Load()
		fmt.Fprintf(out, "worker %2d: %8d committed  %6d aborted  %6d conflicts\n", i, c, a, cf)
		committed += c
		aborted += a
		conflicts += cf
	}
	fmt.Fprintf(out, "total: %d committed, %d aborted (%d conflicts) in %v (%.0f tx/s over real TCP)\n",
		committed, aborted, conflicts, elapsed.Round(time.Millisecond),
		float64(committed)/elapsed.Seconds())

	obs.WriteLatencyTable(out, "commit path", lib.CommitLatencyRows())
	var batch obs.HistogramSnapshot
	for _, tr := range tcps {
		batch = batch.Merge(tr.Metrics().BatchSize.Snapshot())
	}
	obs.WriteValueDistribution(out, "combiner batch size (writes/exchange)", batch)

	if guard != nil {
		// The run must end with the replication factor restored: wait
		// out an in-flight rebuild, then audit every region on every
		// mirror (the spare included) byte for byte.
		deadline := time.Now().Add(30 * time.Second)
		for ram.Live() < len(addrs) {
			if time.Now().After(deadline) {
				return fmt.Errorf("guardian never restored the replication factor: %d/%d mirrors live",
					ram.Live(), len(addrs))
			}
			time.Sleep(50 * time.Millisecond)
		}
		guard.Stop()
		fmt.Fprintf(out, "MIRRORS:\n")
		for _, row := range guard.Status() {
			fmt.Fprintf(out, "  %d %-28s %-10s deaths=%d rebuilt=%d bytes\n",
				row.Slot, row.Mirror, row.State, row.Deaths, row.RebuildBytes)
		}
		if mm, err := ram.VerifyAll(); err != nil {
			return fmt.Errorf("post-rebuild verify: %w", err)
		} else if len(mm) != 0 {
			return fmt.Errorf("post-rebuild verify: %d mirror divergences, first: %v", len(mm), mm[0])
		}
		m := guard.Metrics()
		fmt.Fprintf(out, "guardian: %d death(s) detected, %d rebuild(s), replication factor restored (%d/%d live)\n",
			m.Deaths.Load(), m.Rebuilds.Load(), ram.Live(), len(addrs))
	}

	if cfg.traceOut != "" {
		spans := rec.Snapshot()
		f, err := os.Create(cfg.traceOut)
		if err != nil {
			return fmt.Errorf("trace output: %w", err)
		}
		if err := trace.WriteChromeTrace(f, spans); err != nil {
			f.Close()
			return fmt.Errorf("write trace: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "trace: %d span(s) written to %s (open at ui.perfetto.dev)\n",
			len(spans), cfg.traceOut)
		trace.WriteSlowestReport(out, spans, 5)
	}

	if n := fr.Total(); n > 0 {
		fmt.Fprintf(out, "flight: %d anomaly event(s) recorded (%d dropped from the ring)\n", n, fr.Dropped())
	}

	if err := w.CheckConsistency(); err != nil {
		return err
	}
	fmt.Fprintln(out, "consistency: balance invariant holds")
	return nil
}
