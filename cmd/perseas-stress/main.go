// Command perseas-stress drives a live PERSEAS deployment hard and
// reports sustained throughput — the tool to run after racking two
// mirror machines to see what the installation actually delivers.
//
// It either dials running perseas-server processes:
//
//	perseas-stress -servers host1:7070,host2:7070 -duration 10s
//
// or, with -selfcontained, spawns loopback TCP mirrors of its own. The
// workload is the paper's debit-credit; stats print once per second.
// With -workers N, N goroutines run concurrent transaction handles
// against the same library and their commits interleave on the wire.
// With -chaos, one mirror is killed halfway through and the run must
// finish on the survivor — a live demonstration of the availability
// claim.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ics-forth/perseas/internal/bench"
	"github.com/ics-forth/perseas/internal/core"
	"github.com/ics-forth/perseas/internal/engine"
	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/transport"
)

func main() {
	servers := flag.String("servers", "", "comma-separated mirror addresses (empty with -selfcontained)")
	selfContained := flag.Bool("selfcontained", false, "spawn loopback mirror servers")
	duration := flag.Duration("duration", 10*time.Second, "how long to run")
	chaos := flag.Bool("chaos", false, "kill one self-contained mirror halfway through")
	// TPC-B scales branches with offered load; 16 keeps 4+ workers from
	// serialising on a handful of branch rows.
	branches := flag.Int("branches", 16, "debit-credit scale")
	workers := flag.Int("workers", 1, "concurrent transaction workers")
	flag.Parse()

	if err := run(os.Stdout, *servers, *selfContained, *duration, *chaos, *branches, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "perseas-stress:", err)
		os.Exit(1)
	}
}

type mirrorHandle struct {
	addr string
	srv  *memserver.Server
	l    net.Listener
}

// workerCounters is one worker's outcome tally, updated atomically so
// the per-second reporter can read it live.
type workerCounters struct {
	committed atomic.Uint64
	aborted   atomic.Uint64
	conflicts atomic.Uint64
}

func run(out io.Writer, servers string, selfContained bool, duration time.Duration, chaos bool, branches, workers int) error {
	if workers < 1 {
		return fmt.Errorf("need at least 1 worker, got %d", workers)
	}
	var addrs []string
	var local []mirrorHandle
	if selfContained {
		for i := 0; i < 2; i++ {
			srv := memserver.New(memserver.WithLabel(fmt.Sprintf("local-%d", i)))
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return err
			}
			go func() { _ = transport.Serve(l, srv) }()
			defer l.Close()
			local = append(local, mirrorHandle{addr: l.Addr().String(), srv: srv, l: l})
			addrs = append(addrs, l.Addr().String())
		}
		fmt.Fprintf(out, "self-contained mirrors: %s\n", strings.Join(addrs, ", "))
	} else {
		for _, a := range strings.Split(servers, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		if len(addrs) == 0 {
			return fmt.Errorf("no servers given (use -servers or -selfcontained)")
		}
	}
	if chaos && len(local) < 2 {
		return fmt.Errorf("-chaos requires -selfcontained")
	}

	var mirrors []netram.Mirror
	for _, addr := range addrs {
		tr, err := transport.DialTCP(addr)
		if err != nil {
			return fmt.Errorf("dial %s: %w", addr, err)
		}
		defer tr.Close()
		mirrors = append(mirrors, netram.Mirror{Name: addr, T: tr})
	}
	ram, err := netram.NewClient(mirrors)
	if err != nil {
		return err
	}
	lib, err := core.Init(ram, simclock.NewWall())
	if err != nil {
		return err
	}

	w, err := bench.NewDebitCredit(branches, 1000)
	if err != nil {
		return err
	}
	if err := w.Setup(lib); err != nil {
		return err
	}
	fmt.Fprintf(out, "database: %d bytes across 4 tables, %d mirrors, %d workers\n",
		w.DBBytes(), len(addrs), workers)

	counters := make([]workerCounters, workers)
	workerErrs := make([]error, workers)
	var stop atomic.Bool
	var wg sync.WaitGroup
	seed := time.Now().UnixNano()
	start := time.Now()
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(i)))
			for !stop.Load() {
				switch err := w.ConcurrentTx(lib, rng); {
				case err == nil:
					counters[i].committed.Add(1)
				case errors.Is(err, engine.ErrConflict):
					counters[i].aborted.Add(1)
					counters[i].conflicts.Add(1)
					// Back off briefly so the claim winner finishes with
					// the row instead of racing retries for the CPU.
					time.Sleep(time.Duration(50+rng.Intn(150)) * time.Microsecond)
				default:
					workerErrs[i] = fmt.Errorf(
						"after %d transactions: %w", counters[i].committed.Load(), err)
					return
				}
			}
		}()
	}

	committedNow := func() uint64 {
		var n uint64
		for i := range counters {
			n += counters[i].committed.Load()
		}
		return n
	}
	lastReport := start
	var lastTotal uint64
	chaosFired := false
	for time.Since(start) < duration {
		time.Sleep(50 * time.Millisecond)
		if chaos && !chaosFired && time.Since(start) > duration/2 {
			chaosFired = true
			local[0].srv.Crash()
			local[0].l.Close()
			fmt.Fprintf(out, "CHAOS: killed mirror %s mid-run\n", local[0].addr)
		}
		if time.Since(lastReport) >= time.Second {
			total := committedNow()
			secs := time.Since(lastReport).Seconds()
			fmt.Fprintf(out, "%8.1fs  %10.0f tx/s  (live mirrors: %d)\n",
				time.Since(start).Seconds(), float64(total-lastTotal)/secs, ram.Live())
			lastTotal = total
			lastReport = time.Now()
		}
	}
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	for i, err := range workerErrs {
		if err != nil {
			return fmt.Errorf("worker %d: %w", i, err)
		}
	}

	var committed, aborted, conflicts uint64
	for i := range counters {
		c, a, cf := counters[i].committed.Load(), counters[i].aborted.Load(), counters[i].conflicts.Load()
		fmt.Fprintf(out, "worker %2d: %8d committed  %6d aborted  %6d conflicts\n", i, c, a, cf)
		committed += c
		aborted += a
		conflicts += cf
	}
	fmt.Fprintf(out, "total: %d committed, %d aborted (%d conflicts) in %v (%.0f tx/s over real TCP)\n",
		committed, aborted, conflicts, elapsed.Round(time.Millisecond),
		float64(committed)/elapsed.Seconds())
	if err := w.CheckConsistency(); err != nil {
		return err
	}
	fmt.Fprintln(out, "consistency: balance invariant holds")
	return nil
}
