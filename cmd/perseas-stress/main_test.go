package main

import (
	"strings"
	"testing"
	"time"
)

func TestRunSelfContainedWithChaos(t *testing.T) {
	var sb strings.Builder
	cfg := config{
		selfContained: true,
		duration:      1500 * time.Millisecond,
		chaos:         true,
		branches:      1,
		workers:       2,
		statsEvery:    600 * time.Millisecond,
		metricsAddr:   "127.0.0.1:0",
	}
	if err := run(&sb, cfg); err != nil {
		t.Fatalf("stress run: %v\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{
		"self-contained mirrors:",
		"metrics: http://",
		"CHAOS: killed mirror",
		"worker  0:",
		"worker  1:",
		"commit path",
		"commit total",
		"combiner batch size",
		"consistency: balance invariant holds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// -stats-every dumps the table mid-run, so it appears at least twice.
	if n := strings.Count(out, "commit path"); n < 2 {
		t.Errorf("latency table printed %d times, want periodic + final", n)
	}
}

func TestRunRequiresServers(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, config{duration: time.Second, branches: 1, workers: 1}); err == nil {
		t.Error("no servers and not self-contained should fail")
	}
}

func TestRunRejectsZeroWorkers(t *testing.T) {
	var sb strings.Builder
	cfg := config{selfContained: true, duration: time.Second, branches: 1}
	if err := run(&sb, cfg); err == nil {
		t.Error("zero workers should fail")
	}
}

func TestRunGuardianMode(t *testing.T) {
	var sb strings.Builder
	cfg := config{
		guardian: true,
		duration: 2 * time.Second,
		branches: 1,
		workers:  2,
	}
	if err := run(&sb, cfg); err != nil {
		t.Fatalf("guardian run: %v\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{
		"guardian: watching 3 mirrors",
		"CHAOS: killed mirror",
		"GUARDIAN: mirror",
		"-> dead",
		"-> rebuilding",
		"-> restored",
		"MIRRORS:",
		"replication factor restored (3/3 live)",
		"consistency: balance invariant holds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunRejectsChaosPlusGuardian(t *testing.T) {
	var sb strings.Builder
	cfg := config{guardian: true, chaos: true, duration: time.Second, branches: 1, workers: 1}
	if err := run(&sb, cfg); err == nil {
		t.Error("-chaos with -guardian should fail")
	}
}
