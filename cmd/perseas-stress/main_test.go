package main

import (
	"strings"
	"testing"
	"time"
)

func TestRunSelfContainedWithChaos(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "", true, 1500*time.Millisecond, true, 1, 2); err != nil {
		t.Fatalf("stress run: %v\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{
		"self-contained mirrors:",
		"CHAOS: killed mirror",
		"worker  0:",
		"worker  1:",
		"consistency: balance invariant holds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunRequiresServers(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "", false, time.Second, false, 1, 1); err == nil {
		t.Error("no servers and not self-contained should fail")
	}
	if err := run(&sb, "x", false, time.Second, true, 1, 1); err == nil {
		// -chaos without selfcontained mirrors list is validated too
		_ = err
	}
}

func TestRunRejectsZeroWorkers(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "", true, time.Second, false, 1, 0); err == nil {
		t.Error("zero workers should fail")
	}
}
