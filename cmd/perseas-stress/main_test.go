package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/ics-forth/perseas/internal/trace"
)

func TestRunSelfContainedWithChaos(t *testing.T) {
	var sb strings.Builder
	cfg := config{
		selfContained: true,
		duration:      1500 * time.Millisecond,
		chaos:         true,
		branches:      1,
		workers:       2,
		statsEvery:    600 * time.Millisecond,
		metricsAddr:   "127.0.0.1:0",
	}
	if err := run(&sb, cfg); err != nil {
		t.Fatalf("stress run: %v\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{
		"self-contained mirrors:",
		"metrics: http://",
		"CHAOS: killed mirror",
		"worker  0:",
		"worker  1:",
		"commit path",
		"commit total",
		"combiner batch size",
		"consistency: balance invariant holds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// -stats-every dumps the table mid-run, so it appears at least twice.
	if n := strings.Count(out, "commit path"); n < 2 {
		t.Errorf("latency table printed %d times, want periodic + final", n)
	}
}

func TestRunRequiresServers(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, config{duration: time.Second, branches: 1, workers: 1}); err == nil {
		t.Error("no servers and not self-contained should fail")
	}
}

func TestRunRejectsZeroWorkers(t *testing.T) {
	var sb strings.Builder
	cfg := config{selfContained: true, duration: time.Second, branches: 1}
	if err := run(&sb, cfg); err == nil {
		t.Error("zero workers should fail")
	}
}

func TestRunGuardianMode(t *testing.T) {
	traceFile := filepath.Join(t.TempDir(), "stress.trace.json")
	var sb strings.Builder
	cfg := config{
		guardian: true,
		duration: 2 * time.Second,
		branches: 1,
		workers:  2,
		traceOut: traceFile,
	}
	if err := run(&sb, cfg); err != nil {
		t.Fatalf("guardian run: %v\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{
		"guardian: watching 3 mirrors",
		"CHAOS: killed mirror",
		"GUARDIAN: mirror",
		"-> dead",
		"-> rebuilding",
		"-> restored",
		"MIRRORS:",
		"replication factor restored (3/3 live)",
		"consistency: balance invariant holds",
		"slowest transactions",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// The written trace must parse back and hold spans from every
	// instrumented layer, plus at least one complete transaction tree
	// (a root "tx" span with the commit phases under it).
	f, err := os.Open(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spans, err := trace.ReadChromeTrace(f)
	if err != nil {
		t.Fatalf("trace file does not parse: %v", err)
	}
	layers := map[trace.Layer]bool{}
	var completeTx uint64
	byTrace := map[uint64]map[string]bool{}
	for _, sp := range spans {
		layers[sp.Layer] = true
		if sp.Trace == 0 {
			continue
		}
		if byTrace[sp.Trace] == nil {
			byTrace[sp.Trace] = map[string]bool{}
		}
		byTrace[sp.Trace][sp.Name] = true
	}
	for id, names := range byTrace {
		if names["tx"] && names["set_range"] && names["commit"] && names["word_push"] {
			completeTx = id
			break
		}
	}
	for l := trace.LayerEngine; l <= trace.LayerGuardian; l++ {
		if !layers[l] {
			t.Errorf("trace has no spans from the %s layer", l)
		}
	}
	if completeTx == 0 {
		t.Error("trace holds no complete transaction tree (tx/set_range/commit/word_push)")
	}
}

// TestRunShardedGuardianMode is the shard chaos smoke: two complete
// PERSEAS instances behind the router, each watched by its own guardian;
// shard 0 loses a mirror mid-run while cross-shard transactions keep
// committing (at two shards the TPC-B tables split tellers/rest, so
// every transaction spans both), and both shards must end with the
// replication factor restored and the balance invariant intact.
func TestRunShardedGuardianMode(t *testing.T) {
	traceFile := filepath.Join(t.TempDir(), "shard-stress.trace.json")
	var sb strings.Builder
	cfg := config{
		guardian: true,
		shards:   2,
		duration: 2 * time.Second,
		branches: 1,
		workers:  2,
		traceOut: traceFile,
	}
	if err := run(&sb, cfg); err != nil {
		t.Fatalf("sharded guardian run: %v\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{
		"shard 0 mirrors:",
		"shard 1 mirrors:",
		"placement: shard 0 holds [tellers]",
		"placement: shard 1 holds [accounts branches history]",
		"CHAOS: killed mirror",
		"GUARDIAN: mirror",
		"-> rebuilding",
		"shard 0 guardian:",
		"shard 1 guardian:",
		"replication factor restored (3/3 live)",
		"cross-shard commits",
		"consistency: balance invariant holds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "router: 0 single-shard commits, 0 cross-shard commits") {
		t.Errorf("no transactions committed through the router:\n%s", out)
	}
	f, err := os.Open(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if spans, err := trace.ReadChromeTrace(f); err != nil {
		t.Fatalf("trace file does not parse: %v", err)
	} else if len(spans) == 0 {
		t.Error("sharded run recorded no spans")
	}
}

func TestRunShardedRejectsServers(t *testing.T) {
	var sb strings.Builder
	cfg := config{servers: "h1:7070", shards: 2, duration: time.Second, branches: 1, workers: 1}
	if err := run(&sb, cfg); err == nil {
		t.Error("-shards with -servers should fail")
	}
}

func TestRunRejectsChaosPlusGuardian(t *testing.T) {
	var sb strings.Builder
	cfg := config{guardian: true, chaos: true, duration: time.Second, branches: 1, workers: 1}
	if err := run(&sb, cfg); err == nil {
		t.Error("-chaos with -guardian should fail")
	}
}

func TestRunRecoverChaos(t *testing.T) {
	for _, parallel := range []int{1, 4} {
		var sb strings.Builder
		cfg := config{
			recoverChaos:    true,
			recoverParallel: parallel,
			duration:        2 * time.Second,
			workers:         3,
		}
		if err := run(&sb, cfg); err != nil {
			t.Fatalf("recover-chaos (parallel %d): %v\n%s", parallel, err, sb.String())
		}
		out := sb.String()
		for _, want := range []string{
			"power-failed the primary",
			"zero lost commits",
			"conservation: total balance 128000 matches initial 128000",
			"VerifyAll clean across 3 mirrors",
			"RECOVER-CHAOS PASS",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("parallel %d output missing %q:\n%s", parallel, want, out)
			}
		}
	}
}
