// Command perseas-bench regenerates every table and figure of the
// paper's evaluation (Section 5) on the deterministic simulation rig:
//
//	perseas-bench -experiment fig5     # SCI remote-write latency curve
//	perseas-bench -experiment fig6     # transaction overhead vs tx size
//	perseas-bench -experiment table1   # PERSEAS debit-credit / order-entry
//	perseas-bench -experiment compare  # Section 5.1 cross-system table
//	perseas-bench -experiment dbsize   # throughput vs database size
//	perseas-bench -experiment ablate   # design-choice ablations
//	perseas-bench -experiment all      # everything above
//
// All timings are virtual: they come from the calibrated PCI-SCI, disk
// and memory models, so the output is identical on every host.
//
// -experiment commitpath additionally breaks the commit cost into the
// paper's Fig. 3 phases (local undo copy, remote undo push, range push,
// commit-word publish). It runs only when named: the reference outputs
// of -experiment all predate the observability layer and stay
// byte-identical.
//
// -experiment shard sweeps the -shards counts (default 1,2,4) and
// reports aggregate single-shard-transaction throughput as the region
// namespace partitions across router shards, each with its own
// serialised mirror link. Named-only, wall-clock; -bench-out captures
// the rows as JSON.
//
// -trace-out FILE additionally records every transaction of the run as
// a span tree and writes Chrome/Perfetto trace-event JSON at the end
// (open at ui.perfetto.dev). The recorder only reads the simulated
// clock, so every figure is byte-identical with tracing on or off.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/ics-forth/perseas/internal/bench"
	"github.com/ics-forth/perseas/internal/core"
	"github.com/ics-forth/perseas/internal/disk"
	"github.com/ics-forth/perseas/internal/engine"
	"github.com/ics-forth/perseas/internal/fault"
	"github.com/ics-forth/perseas/internal/flight"
	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/obs"
	"github.com/ics-forth/perseas/internal/rig"
	"github.com/ics-forth/perseas/internal/router"
	"github.com/ics-forth/perseas/internal/sci"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/trace"
	"github.com/ics-forth/perseas/internal/transport"
)

// tracer, when non-nil, records per-transaction spans in every PERSEAS
// lab the experiments build. It never advances the simulated clock, so
// the rendered figures are identical with tracing on or off (pinned by
// TestTracingKeepsOutputByteIdentical).
var tracer *trace.Recorder

// flightRec, when non-nil, is the anomaly flight recorder threaded
// into every lab's netram client. Like the tracer it only reads the
// clock, so the figures are byte-identical with it enabled (pinned by
// TestFlightRecorderKeepsOutputByteIdentical).
var flightRec *flight.Recorder

func main() {
	experiment := flag.String("experiment", "all",
		"which experiment to run: fig5, fig6, table1, compare, dbsize, ablate, commitpath, fanout, shard, all (commitpath, fanout and shard are excluded from all; name them explicitly)")
	txs := flag.Int("txs", 2000, "transactions per measurement")
	traceOut := flag.String("trace-out", "",
		"write per-transaction spans as Chrome/Perfetto trace-event JSON to this file at the end of the run")
	traceSlower := flag.Duration("trace-slower-than", 0,
		"keep only transactions at least this slow in modelled time (0 = keep all; with -trace-out)")
	eventsOut := flag.String("events-out", "",
		"record anomaly flight events in every lab and write them as JSON to this file at the end of the run")
	flag.IntVar(&mirrorsN, "mirrors", 1,
		"replication degree for the simulated PERSEAS labs (and the -tcp commitpath rig)")
	flag.BoolVar(&tcpCommitPath, "tcp", false,
		"with -experiment commitpath: also run real loopback-TCP mirrors and report wall-clock commit latency, serial vs parallel fan-out")
	flag.StringVar(&benchOutPath, "bench-out", "",
		"write machine-readable results of the fanout, shard or recovery experiment as JSON to this file (with -experiment recovery it also enables the parallel recovery and rebuild sweeps)")
	flag.DurationVar(&netDelay, "net-delay", 200*time.Microsecond,
		"with -tcp: extra per-write delay modelling LAN round-trip time on top of loopback (0 = raw loopback)")
	flag.StringVar(&shardCSV, "shards", "1,2,4",
		"with -experiment shard: comma-separated shard counts to sweep")
	flag.IntVar(&quorumW, "quorum", 0,
		"with -experiment fanout: also sweep a w-of-n quorum join against a 10x-slow straggler mirror (0 = skip)")
	flag.StringVar(&serverClientsCSV, "server-clients", "1,16,256,1024",
		"with -experiment server: comma-separated client counts to sweep")
	flag.DurationVar(&serverCellDur, "server-cell", 1500*time.Millisecond,
		"with -experiment server: measured duration per (clients, mode) cell")
	flag.Parse()

	if *traceOut != "" {
		tracer = trace.NewRecorder()
		tracer.Enable()
		tracer.SetSlowerThan(*traceSlower)
	}
	if *eventsOut != "" {
		flightRec = flight.New(0)
		flightRec.Enable()
	}
	if err := run(os.Stdout, *experiment, *txs); err != nil {
		fmt.Fprintln(os.Stderr, "perseas-bench:", err)
		os.Exit(1)
	}
	if benchOutPath != "" {
		if err := writeBenchFile(os.Stdout, benchOutPath); err != nil {
			fmt.Fprintln(os.Stderr, "perseas-bench:", err)
			os.Exit(1)
		}
	}
	if *traceOut != "" {
		if err := writeTraceFile(os.Stdout, *traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "perseas-bench:", err)
			os.Exit(1)
		}
	}
	if *eventsOut != "" {
		if err := writeEventsFile(os.Stdout, *eventsOut); err != nil {
			fmt.Fprintln(os.Stderr, "perseas-bench:", err)
			os.Exit(1)
		}
	}
}

// writeEventsFile dumps the flight recorder's ring as JSON.
func writeEventsFile(out io.Writer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("events output: %w", err)
	}
	if err := flightRec.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("write events: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "flight: %d anomaly event(s) written to %s\n", flightRec.Total(), path)
	return nil
}

// writeTraceFile dumps the tracer's rings as Chrome trace-event JSON.
func writeTraceFile(out io.Writer, path string) error {
	spans := tracer.Snapshot()
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace output: %w", err)
	}
	if err := trace.WriteChromeTrace(f, spans); err != nil {
		f.Close()
		return fmt.Errorf("write trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "trace: %d span(s) written to %s (open at ui.perfetto.dev)\n", len(spans), path)
	return nil
}

// mirrorsN, tcpCommitPath and benchOutPath carry the -mirrors, -tcp
// and -bench-out flags into the experiment runners. The defaults leave
// every reference output byte-identical.
var (
	mirrorsN      = 1
	tcpCommitPath bool
	benchOutPath  string
	netDelay      time.Duration
	shardCSV      = "1,2,4"
	quorumW       int

	serverClientsCSV = "1,16,256,1024"
	serverCellDur    = 1500 * time.Millisecond
)

// routerSingle forces the shard router even for single-shard labs. Only
// the byte-identity regression test sets it: the single-shard router is
// a pass-through, so every figure must render identically either way.
var routerSingle bool

// benchResults holds whatever machine-readable payload the named
// experiment produced, for -bench-out.
var benchResults any

// writeBenchFile dumps benchResults as indented JSON.
func writeBenchFile(out io.Writer, path string) error {
	if benchResults == nil {
		return fmt.Errorf("-bench-out: the %s experiment produced no machine-readable results (use -experiment fanout)", "selected")
	}
	data, err := json.MarshalIndent(benchResults, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "bench: results written to %s\n", path)
	return nil
}

// defaultConfig is rig.DefaultConfig plus the process-wide tracer and
// the -mirrors replication degree.
func defaultConfig() rig.Config {
	cfg := rig.DefaultConfig()
	cfg.Tracer = tracer
	cfg.Flight = flightRec
	cfg.Mirrors = mirrorsN
	cfg.RouterSingle = routerSingle
	return cfg
}

func run(w io.Writer, experiment string, txs int) error {
	type exp struct {
		name string
		fn   func(io.Writer, int) error
	}
	all := []exp{
		{"fig5", runFig5},
		{"fig6", runFig6},
		{"table1", runTable1},
		{"compare", runCompare},
		{"dbsize", runDBSize},
		{"ablate", runAblate},
		{"recovery", runRecovery},
		{"trend", runTrend},
		{"latency", runLatency},
		{"mixed", runMixed},
	}
	if experiment == "all" {
		for i, e := range all {
			if i > 0 {
				fmt.Fprintln(w)
			}
			if err := e.fn(w, txs); err != nil {
				return fmt.Errorf("%s: %w", e.name, err)
			}
		}
		fmt.Fprintln(w, "\n(not included: -experiment commitpath — run it by name for the Fig. 3 phase breakdown)")
		return nil
	}
	// commitpath and fanout are addressable by name only — adding them
	// to the all slice would change the reference -experiment all
	// output.
	named := append(all, exp{"commitpath", runCommitPath}, exp{"fanout", runFanout}, exp{"shard", runShard}, exp{"server", runServer})
	for _, e := range named {
		if e.name == experiment {
			return e.fn(w, txs)
		}
	}
	return fmt.Errorf("unknown experiment %q", experiment)
}

func perseasFactory(cfg rig.Config) bench.LabFactory {
	return func() (engine.Engine, *simclock.SimClock, error) {
		lab, err := rig.NewPerseas(cfg)
		if err != nil {
			return nil, nil, err
		}
		return lab.Engine, lab.Clock, nil
	}
}

func runFig5(w io.Writer, _ int) error {
	if err := bench.RenderFigure5(w, sci.DefaultParams()); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return bench.RenderFigure5Offsets(w, sci.DefaultParams())
}

func runFig6(w io.Writer, txs int) error {
	perSize := txs / 10
	if perSize < 20 {
		perSize = 20
	}
	pts, err := bench.Sweep(perseasFactory(defaultConfig()), 2<<20, bench.Figure6Sizes(), perSize)
	if err != nil {
		return err
	}
	bench.RenderFigure6(w, pts)
	return nil
}

func runTable1(w io.Writer, txs int) error {
	var results []bench.Result
	for _, wl := range []func() (bench.Workload, error){
		func() (bench.Workload, error) { return bench.NewDebitCredit(0, 0) },
		func() (bench.Workload, error) { return bench.NewOrderEntry(0, 0, 0) },
	} {
		lab, err := rig.NewPerseas(defaultConfig())
		if err != nil {
			return err
		}
		workload, err := wl()
		if err != nil {
			return err
		}
		res, err := bench.Run(lab.Engine, lab.Clock, workload, txs, 42)
		if err != nil {
			return err
		}
		_ = lab.Engine.Close()
		results = append(results, res)
	}
	bench.RenderTable1(w, results)
	return nil
}

func runCompare(w io.Writer, txs int) error {
	var results []bench.Result
	workloads := []struct {
		name string
		mk   func() (bench.Workload, error)
	}{
		{"synthetic-64", func() (bench.Workload, error) { return bench.NewSynthetic(1<<20, 64) }},
		{"debit-credit", func() (bench.Workload, error) { return bench.NewDebitCredit(0, 0) }},
		{"order-entry", func() (bench.Workload, error) { return bench.NewOrderEntry(0, 0, 0) }},
	}
	for _, wl := range workloads {
		for _, b := range rig.All() {
			lab, err := b.Build(defaultConfig())
			if err != nil {
				return err
			}
			workload, err := wl.mk()
			if err != nil {
				return err
			}
			n := txs
			if b.Name == "rvm" || b.Name == "rvm-group" {
				// Disk-bound engines: milliseconds of virtual time per
				// transaction; a few hundred suffice for a stable mean.
				n = min(n, 300)
			}
			res, err := bench.Run(lab.Engine, lab.Clock, workload, n, 42)
			if err != nil {
				return fmt.Errorf("%s on %s: %w", wl.name, b.Name, err)
			}
			_ = lab.Engine.Close()
			results = append(results, res)
		}
	}
	bench.RenderComparison(w, results)
	return nil
}

func runDBSize(w io.Writer, txs int) error {
	var rows []bench.DBSizeRow
	for _, branches := range []int{1, 2, 4, 8, 16} {
		lab, err := rig.NewPerseas(defaultConfig())
		if err != nil {
			return err
		}
		workload, err := bench.NewDebitCredit(branches, 2500)
		if err != nil {
			return err
		}
		res, err := bench.Run(lab.Engine, lab.Clock, workload, txs, 42)
		if err != nil {
			return err
		}
		_ = lab.Engine.Close()
		rows = append(rows, bench.DBSizeRow{
			Branches: branches,
			DBBytes:  workload.DBBytes(),
			TPS:      res.TPS,
		})
	}
	bench.RenderDBSize(w, rows)
	return nil
}

func runAblate(w io.Writer, txs int) error {
	configs := []struct {
		name   string
		mutate func(*rig.Config)
	}{
		{"default (1 mirror)", func(*rig.Config) {}},
		{"no 64B alignment", func(c *rig.Config) { c.NoAlignment = true }},
		{"no remote undo (unsafe)", func(c *rig.Config) { c.NoRemoteUndo = true }},
		{"2 mirrors", func(c *rig.Config) { c.Mirrors = 2 }},
		{"3 mirrors", func(c *rig.Config) { c.Mirrors = 3 }},
		// NICs with transparent mirroring support (PRAM, Telegraphos,
		// SHRIMP): replication degree stops costing anything.
		{"2 mirrors, hw mirroring", func(c *rig.Config) { c.Mirrors = 2; c.HardwareMirroring = true }},
		{"3 mirrors, hw mirroring", func(c *rig.Config) { c.Mirrors = 3; c.HardwareMirroring = true }},
	}
	var rows []bench.AblationRow
	for _, c := range configs {
		cfg := defaultConfig()
		c.mutate(&cfg)
		lab, err := rig.NewPerseas(cfg)
		if err != nil {
			return err
		}
		workload, err := bench.NewDebitCredit(0, 0)
		if err != nil {
			return err
		}
		res, err := bench.Run(lab.Engine, lab.Clock, workload, txs, 42)
		if err != nil {
			return err
		}
		_ = lab.Engine.Close()
		rows = append(rows, bench.AblationRow{Config: c.name, TPS: res.TPS, PerTx: res.PerTx})
	}
	// The 64-byte expansion matters most for mid-size unaligned writes,
	// where edge chunks drain as several small packets: show it on the
	// 200-byte synthetic workload too.
	for _, noAlign := range []bool{false, true} {
		cfg := defaultConfig()
		cfg.NoAlignment = noAlign
		lab, err := rig.NewPerseas(cfg)
		if err != nil {
			return err
		}
		workload, err := bench.NewSynthetic(1<<20, 200)
		if err != nil {
			return err
		}
		res, err := bench.Run(lab.Engine, lab.Clock, workload, txs, 42)
		if err != nil {
			return err
		}
		_ = lab.Engine.Close()
		name := "synthetic-200, aligned"
		if noAlign {
			name = "synthetic-200, no alignment"
		}
		rows = append(rows, bench.AblationRow{Config: name, TPS: res.TPS, PerTx: res.PerTx})
	}
	bench.RenderAblation(w, rows)
	return nil
}

func runRecovery(w io.Writer, _ int) error {
	var rows []bench.RecoveryRow
	for _, dbMB := range []uint64{1, 4, 16} {
		lab, err := rig.NewPerseas(defaultConfig())
		if err != nil {
			return err
		}
		size := dbMB << 20
		db, err := lab.Engine.CreateDB("db", size)
		if err != nil {
			return err
		}
		if err := lab.Engine.InitDB(db); err != nil {
			return err
		}
		// Leave a transaction in flight with a handful of ranges so
		// recovery exercises the remote-undo rollback too.
		const ranges = 4
		tx, err := lab.Engine.Begin()
		if err != nil {
			return err
		}
		for r := 0; r < ranges; r++ {
			if err := tx.SetRange(db, uint64(r)*4096, 512); err != nil {
				return err
			}
		}
		if err := lab.Engine.Crash(fault.CrashPower); err != nil {
			return err
		}
		t0 := lab.Clock.Now()
		if err := lab.Engine.Recover(); err != nil {
			return err
		}
		rows = append(rows, bench.RecoveryRow{
			DBBytes:        size,
			InFlightRanges: ranges,
			Elapsed:        lab.Clock.Now() - t0,
		})
		_ = lab.Engine.Close()
	}
	bench.RenderRecovery(w, rows)
	// The parallel recovery and rebuild sweeps time wall-clock speedups
	// on this host, so they run only when -bench-out asks for the
	// machine-readable results; the reference table above stays
	// byte-identical.
	if benchOutPath != "" {
		fmt.Fprintln(w)
		return runRecoverySweep(w)
	}
	return nil
}

// slowLink wraps a transport with a mutex-serialised fixed service time
// per remote data operation — read, write or server-side fill. It
// models one mirror's NIC link handling one transfer at a time: a
// serial recovery pays the sum of its reads on one link, while a
// striped recovery spreads them over the mirrors' independent links and
// pays roughly the per-link maximum. Unlike slowWrite/slowPipe it
// delays reads too, because recovery and rebuild are read-heavy.
type slowLink struct {
	transport.Transport
	delay time.Duration
	mu    sync.Mutex
}

func (s *slowLink) pause() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(s.delay)
}

func (s *slowLink) Write(seg uint32, offset uint64, data []byte) error {
	s.pause()
	return s.Transport.Write(seg, offset, data)
}

func (s *slowLink) WriteBatch(writes []transport.BatchWrite) error {
	s.pause()
	if bw, ok := s.Transport.(transport.BatchWriter); ok {
		return bw.WriteBatch(writes)
	}
	for _, wr := range writes {
		if err := s.Transport.Write(wr.Seg, wr.Offset, wr.Data); err != nil {
			return err
		}
	}
	return nil
}

func (s *slowLink) Read(seg uint32, offset uint64, n uint32) ([]byte, error) {
	s.pause()
	return s.Transport.Read(seg, offset, n)
}

func (s *slowLink) Fill(seg uint32, offset, n uint64) error {
	s.pause()
	if f, ok := s.Transport.(transport.Filler); ok {
		return f.Fill(seg, offset, n)
	}
	return s.Transport.Write(seg, offset, make([]byte, n))
}

// recoverSweepRow is one row of the parallel-recovery sweep, for
// -bench-out.
type recoverSweepRow struct {
	Workers    int     `json:"workers"`
	WallNs     int64   `json:"wall_ns"`
	SpeedupVs1 float64 `json:"speedup_vs_serial"`
}

// rebuildSweepRow is one row of the pipelined-rebuild sweep, for
// -bench-out.
type rebuildSweepRow struct {
	Depth      int     `json:"pipeline_depth"`
	WallNs     int64   `json:"wall_ns"`
	SpeedupVs1 float64 `json:"speedup_vs_depth_1"`
}

// runRecoverySweep times crash recovery and mirror rebuild on the wall
// clock over serialised links. Each arm rebuilds the crashed state from
// scratch so every worker count recovers exactly the same bytes,
// rollback included.
func runRecoverySweep(w io.Writer) error {
	const (
		linkDelay  = 300 * time.Microsecond
		chunk      = 64 << 10
		recMirrors = 4
		recRegions = 8
		recSize    = uint64(1 << 20)
	)

	fmt.Fprintf(w, "Parallel recovery sweep — %d mirrors all-ack, %d × %d KiB databases, %d KiB read chunks, %v serialised link delay per op, wall-clock\n",
		recMirrors, recRegions, recSize>>10, chunk>>10, linkDelay)
	fmt.Fprintf(w, "%8s %14s %10s\n", "workers", "recover", "speedup")
	var recRows []recoverSweepRow
	for _, workers := range []int{1, 2, 4} {
		elapsed, err := recoverOnce(workers, recMirrors, recRegions, recSize, chunk, linkDelay)
		if err != nil {
			return err
		}
		speedup := 1.0
		if len(recRows) > 0 {
			speedup = float64(recRows[0].WallNs) / float64(elapsed.Nanoseconds())
		}
		recRows = append(recRows, recoverSweepRow{
			Workers: workers, WallNs: elapsed.Nanoseconds(),
			SpeedupVs1: math.Round(speedup*100) / 100,
		})
		fmt.Fprintf(w, "%8d %14s %9.2fx\n", workers, elapsed.Round(time.Microsecond), speedup)
	}

	const (
		rebMirrors = 3
		rebRegions = 2
		rebSize    = uint64(2 << 20)
	)
	fmt.Fprintf(w, "\nPipelined rebuild sweep — replace 1 of %d mirrors (%d survivors), %d × %d MiB regions, same links\n",
		rebMirrors, rebMirrors-1, rebRegions, rebSize>>20)
	fmt.Fprintf(w, "%8s %14s %10s\n", "depth", "rebuild", "speedup")
	var rebRows []rebuildSweepRow
	for _, depth := range []int{1, 2} {
		elapsed, err := rebuildOnce(depth, rebMirrors, rebRegions, rebSize, chunk, linkDelay)
		if err != nil {
			return err
		}
		speedup := 1.0
		if len(rebRows) > 0 {
			speedup = float64(rebRows[0].WallNs) / float64(elapsed.Nanoseconds())
		}
		rebRows = append(rebRows, rebuildSweepRow{
			Depth: depth, WallNs: elapsed.Nanoseconds(),
			SpeedupVs1: math.Round(speedup*100) / 100,
		})
		fmt.Fprintf(w, "%8d %14s %9.2fx\n", depth, elapsed.Round(time.Microsecond), speedup)
	}

	benchResults = map[string]any{
		"experiment":    "recovery",
		"link_delay_ns": linkDelay.Nanoseconds(),
		"read_chunk":    chunk,
		"recovery": map[string]any{
			"mirrors": recMirrors, "regions": recRegions, "region_bytes": recSize,
			"rows": recRows,
		},
		"rebuild": map[string]any{
			"mirrors": rebMirrors, "survivors": rebMirrors - 1,
			"regions": rebRegions, "region_bytes": rebSize,
			"rows": rebRows,
		},
	}
	return nil
}

// recoverOnce builds a mirrored database set over in-process servers,
// crashes it with a transaction in flight, and times a fresh Attach —
// connect, fetch, scan, roll back — through delay-serialised links at
// the given recovery parallelism.
func recoverOnce(workers, nMirrors, nRegions int, regionSize, chunk uint64, delay time.Duration) (time.Duration, error) {
	// Populate through undelayed transports: only recovery is timed.
	servers := make([]*memserver.Server, nMirrors)
	var seed []netram.Mirror
	for i := 0; i < nMirrors; i++ {
		servers[i] = memserver.New(memserver.WithLabel(fmt.Sprintf("rec-%d", i)))
		tr, err := transport.NewInProc(servers[i], sci.DefaultParams(), simclock.NewWall())
		if err != nil {
			return 0, err
		}
		seed = append(seed, netram.Mirror{Name: servers[i].Label(), T: tr})
	}
	ram, err := netram.NewClient(seed)
	if err != nil {
		return 0, err
	}
	lib, err := core.Init(ram, simclock.NewWall())
	if err != nil {
		return 0, err
	}
	var first engine.DB
	for r := 0; r < nRegions; r++ {
		db, err := lib.CreateDB(fmt.Sprintf("db%d", r), regionSize)
		if err != nil {
			return 0, err
		}
		if r == 0 {
			first = db
		}
		tx, err := lib.BeginTx()
		if err != nil {
			return 0, err
		}
		buf := db.Bytes()
		for g := 0; g < 4; g++ {
			off := uint64(g) * (regionSize / 4)
			if err := tx.SetRange(db, off, 4096); err != nil {
				return 0, err
			}
			buf[off] = byte(r + g + 1)
		}
		if err := tx.Commit(); err != nil {
			return 0, err
		}
	}
	// Leave a transaction in flight so every arm recovers the same
	// rollback work on top of the fetches.
	tx, err := lib.BeginTx()
	if err != nil {
		return 0, err
	}
	for g := 0; g < 4; g++ {
		if err := tx.SetRange(first, uint64(g)*4096, 512); err != nil {
			return 0, err
		}
	}
	if err := lib.Crash(fault.CrashPower); err != nil {
		return 0, err
	}
	ram.Close()

	// Recover on a fresh node: new transports, this time each behind a
	// serialised delayed link.
	var mirrors []netram.Mirror
	for i := 0; i < nMirrors; i++ {
		tr, err := transport.NewInProc(servers[i], sci.DefaultParams(), simclock.NewWall())
		if err != nil {
			return 0, err
		}
		mirrors = append(mirrors, netram.Mirror{
			Name: servers[i].Label(), T: &slowLink{Transport: tr, delay: delay},
		})
	}
	ram2, err := netram.NewClient(mirrors, netram.WithReadChunk(chunk))
	if err != nil {
		return 0, err
	}
	defer ram2.Close()
	var opts []core.Option
	if workers > 1 {
		opts = append(opts, core.WithRecoveryParallelism(workers))
	}
	start := time.Now()
	if _, err := core.Attach(ram2, simclock.NewWall(), opts...); err != nil {
		return 0, fmt.Errorf("attach with %d workers: %w", workers, err)
	}
	return time.Since(start), nil
}

// rebuildOnce populates regions on delay-serialised mirror links, kills
// one mirror, and times RebuildMirror onto a fresh spare at the given
// pipeline depth.
func rebuildOnce(depth, nMirrors, nRegions int, regionSize, chunk uint64, delay time.Duration) (time.Duration, error) {
	var links []*slowLink
	var mirrors []netram.Mirror
	for i := 0; i < nMirrors; i++ {
		srv := memserver.New(memserver.WithLabel(fmt.Sprintf("reb-%d", i)))
		tr, err := transport.NewInProc(srv, sci.DefaultParams(), simclock.NewWall())
		if err != nil {
			return 0, err
		}
		// Delay 0 during population; the links slow down for the timed
		// rebuild only.
		l := &slowLink{Transport: tr}
		links = append(links, l)
		mirrors = append(mirrors, netram.Mirror{Name: srv.Label(), T: l})
	}
	opts := []netram.Option{netram.WithReadChunk(chunk)}
	if depth > 1 {
		opts = append(opts, netram.WithRebuildPipeline(depth))
	}
	c, err := netram.NewClient(mirrors, opts...)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	for r := 0; r < nRegions; r++ {
		reg, err := c.Malloc(fmt.Sprintf("reg%d", r), regionSize)
		if err != nil {
			return 0, err
		}
		for i := range reg.Local {
			reg.Local[i] = byte(r + i)
		}
		if err := c.PushAcked(reg, 0, regionSize); err != nil {
			return 0, err
		}
	}
	for _, l := range links {
		l.delay = delay
	}
	if err := c.MarkMirrorDown(0); err != nil {
		return 0, err
	}
	spare := memserver.New(memserver.WithLabel("reb-spare"))
	tr, err := transport.NewInProc(spare, sci.DefaultParams(), simclock.NewWall())
	if err != nil {
		return 0, err
	}
	start := time.Now()
	if err := c.RebuildMirror(0, netram.Mirror{Name: spare.Label(), T: &slowLink{Transport: tr, delay: delay}}, nil); err != nil {
		return 0, fmt.Errorf("rebuild at depth %d: %w", depth, err)
	}
	return time.Since(start), nil
}

// runCommitPath runs the debit-credit workload and renders the library's
// per-phase commit histograms. On the simulated clock every duration is
// modelled time, so the table is deterministic across hosts.
func runCommitPath(w io.Writer, txs int) error {
	lab, err := rig.NewPerseas(defaultConfig())
	if err != nil {
		return err
	}
	lib, ok := lab.Engine.(*core.Library)
	if !ok {
		return fmt.Errorf("perseas lab engine is %T, not *core.Library", lab.Engine)
	}
	workload, err := bench.NewDebitCredit(0, 0)
	if err != nil {
		return err
	}
	if _, err := bench.Run(lab.Engine, lab.Clock, workload, txs, 42); err != nil {
		return err
	}
	fmt.Fprintln(w, "Commit-path phase breakdown — debit-credit, modelled time")
	obs.WriteLatencyTable(w, "commit path", lib.CommitLatencyRows())
	if err := lab.Engine.Close(); err != nil {
		return err
	}
	if tcpCommitPath {
		fmt.Fprintln(w)
		return runCommitPathTCP(w, txs, mirrorsN)
	}
	return nil
}

// runCommitPathTCP measures the real commit path over loopback TCP
// mirrors on the wall clock, once with the serial mirror loop and once
// with the parallel fan-out. With N mirrors the serial data push costs
// roughly the sum of the per-mirror round trips while the parallel one
// costs roughly the slowest — the numbers printed here are the
// evidence.
func runCommitPathTCP(w io.Writer, txs, nMirrors int) error {
	if nMirrors < 2 {
		nMirrors = 2
	}
	iters := txs
	if iters > 400 {
		iters = 400
	}

	measure := func(serial bool) (commits []time.Duration, pushMean []time.Duration, err error) {
		var listeners []net.Listener
		defer func() {
			for _, l := range listeners {
				l.Close()
			}
		}()
		var mirrors []netram.Mirror
		var conns []*transport.TCP
		defer func() {
			for _, c := range conns {
				c.Close()
			}
		}()
		for i := 0; i < nMirrors; i++ {
			srv := memserver.New(memserver.WithLabel(fmt.Sprintf("tcp-%d", i)))
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return nil, nil, err
			}
			listeners = append(listeners, l)
			go func() { _ = transport.Serve(l, srv) }()
			tr, err := transport.DialTCP(l.Addr().String())
			if err != nil {
				return nil, nil, err
			}
			conns = append(conns, tr)
			var tp transport.Transport = tr
			if netDelay > 0 {
				tp = &slowWrite{Transport: tr, delay: netDelay}
			}
			mirrors = append(mirrors, netram.Mirror{Name: fmt.Sprintf("tcp-%d", i), T: tp})
		}
		var opts []netram.Option
		if serial {
			opts = append(opts, netram.WithSerialFanout())
		}
		ram, err := netram.NewClient(mirrors, opts...)
		if err != nil {
			return nil, nil, err
		}
		defer ram.Close()
		lib, err := core.Init(ram, simclock.NewWall(), core.WithStoreGather())
		if err != nil {
			return nil, nil, err
		}
		db, err := lib.CreateDB("bank", 1<<20)
		if err != nil {
			return nil, nil, err
		}
		buf := db.Bytes()
		cycle := func(k int) error {
			tx, err := lib.BeginTx()
			if err != nil {
				return err
			}
			for r := 0; r < 4; r++ {
				off := uint64(r) * (1 << 18)
				if err := tx.SetRange(db, off, 4<<10); err != nil {
					return err
				}
				buf[off] = byte(k)
			}
			start := time.Now()
			if err := tx.Commit(); err != nil {
				return err
			}
			commits = append(commits, time.Since(start))
			return nil
		}
		for k := 0; k < 8; k++ { // warm connections, pools and slots
			if err := cycle(k); err != nil {
				return nil, nil, err
			}
		}
		commits = commits[:0]
		for k := 0; k < iters; k++ {
			if err := cycle(k); err != nil {
				return nil, nil, err
			}
		}
		for i := range mirrors {
			snap := ram.Metrics().MirrorPush[i].Snapshot()
			pushMean = append(pushMean, time.Duration(snap.Mean()))
		}
		return commits, pushMean, lib.Close()
	}

	stats := func(ds []time.Duration) (mean, p99 time.Duration) {
		if len(ds) == 0 {
			return 0, 0
		}
		sorted := append([]time.Duration(nil), ds...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		var sum time.Duration
		for _, d := range sorted {
			sum += d
		}
		return sum / time.Duration(len(sorted)), sorted[len(sorted)*99/100]
	}

	fmt.Fprintf(w, "Commit path over loopback TCP — %d mirrors, %d txs, %v modelled RTT per write, wall-clock\n", nMirrors, iters, netDelay)
	fmt.Fprintf(w, "%12s %14s %14s   %s\n", "fan-out", "commit mean", "commit p99", "per-mirror push mean")
	var means [2]time.Duration
	for i, mode := range []string{"serial", "parallel"} {
		commits, pushMean, err := measure(mode == "serial")
		if err != nil {
			return err
		}
		mean, p99 := stats(commits)
		means[i] = mean
		var per []string
		for _, d := range pushMean {
			per = append(per, d.Round(time.Microsecond).String())
		}
		fmt.Fprintf(w, "%12s %14s %14s   %s\n", mode,
			mean.Round(time.Microsecond), p99.Round(time.Microsecond), strings.Join(per, " "))
	}
	fmt.Fprintf(w, "parallel/serial commit mean: %.2fx (sum across mirrors → max across mirrors; 1/%d = %.2fx is the data-push ideal)\n",
		float64(means[1])/float64(means[0]), nMirrors, 1/float64(nMirrors))
	return nil
}

// fanoutResult is one row of the fanout microbenchmark, for -bench-out.
type fanoutResult struct {
	Mirrors int    `json:"mirrors"`
	Mode    string `json:"mode"`
	Quorum  int    `json:"quorum,omitempty"`
	NsPerOp int64  `json:"ns_per_op"`
}

// slowWrite wraps a transport, adding a fixed real-time delay to every
// remote write — a stand-in for a LAN round trip, so the fan-out
// speedup is visible on the wall clock even with in-process mirrors.
type slowWrite struct {
	transport.Transport
	delay time.Duration
}

func (s *slowWrite) Write(seg uint32, offset uint64, data []byte) error {
	time.Sleep(s.delay)
	return s.Transport.Write(seg, offset, data)
}

func (s *slowWrite) WriteBatch(writes []transport.BatchWrite) error {
	time.Sleep(s.delay)
	if bw, ok := s.Transport.(transport.BatchWriter); ok {
		return bw.WriteBatch(writes)
	}
	for _, wr := range writes {
		if err := s.Transport.Write(wr.Seg, wr.Offset, wr.Data); err != nil {
			return err
		}
	}
	return nil
}

// runFanout times Push over 1, 2 and 4 delayed mirrors, serial loop vs
// parallel fan-out, on the wall clock. Named-only: its output is timing
// of this host, not a reproduced figure.
func runFanout(w io.Writer, txs int) error {
	const delay = 200 * time.Microsecond
	iters := txs / 10
	if iters < 50 {
		iters = 50
	}
	if iters > 300 {
		iters = 300
	}
	fmt.Fprintf(w, "Mirror fan-out microbenchmark — %v per-write mirror delay, %d pushes of 4 KiB, wall-clock\n", delay, iters)
	fmt.Fprintf(w, "%8s %14s %14s %10s\n", "mirrors", "serial/op", "parallel/op", "speedup")
	var results []fanoutResult
	for _, nm := range []int{1, 2, 4} {
		perOp := map[string]time.Duration{}
		for _, mode := range []string{"serial", "parallel"} {
			var opts []netram.Option
			if mode == "serial" {
				opts = append(opts, netram.WithSerialFanout())
			}
			var mirrors []netram.Mirror
			for i := 0; i < nm; i++ {
				srv := memserver.New(memserver.WithLabel(fmt.Sprintf("m%d", i)))
				tr, err := transport.NewInProc(srv, sci.DefaultParams(), simclock.NewWall())
				if err != nil {
					return err
				}
				mirrors = append(mirrors, netram.Mirror{
					Name: srv.Label(), T: &slowWrite{Transport: tr, delay: delay},
				})
			}
			c, err := netram.NewClient(mirrors, opts...)
			if err != nil {
				return err
			}
			reg, err := c.Malloc("bench", 64<<10)
			if err != nil {
				return err
			}
			for i := 0; i < 3; i++ { // warm workers and pools
				if err := c.Push(reg, 0, 4096); err != nil {
					return err
				}
			}
			start := time.Now()
			for i := 0; i < iters; i++ {
				if err := c.Push(reg, uint64(i%16)*4096, 4096); err != nil {
					return err
				}
			}
			perOp[mode] = time.Since(start) / time.Duration(iters)
			results = append(results, fanoutResult{Mirrors: nm, Mode: mode, NsPerOp: perOp[mode].Nanoseconds()})
			c.Close()
		}
		fmt.Fprintf(w, "%8d %14s %14s %9.2fx\n", nm,
			perOp["serial"].Round(time.Microsecond), perOp["parallel"].Round(time.Microsecond),
			float64(perOp["serial"])/float64(perOp["parallel"]))
	}
	// Quorum sweep: same rig plus one 10x-slow straggler mirror. The
	// all-ack arm pays the straggler on every push; the w-of-n arm
	// returns at the fast mirrors' pace while the straggler catches up
	// asynchronously — the gap is the headline number BENCH_quorum.json
	// tracks.
	if quorumW > 0 {
		const slowFactor = 10
		const nm = 3
		if quorumW >= nm {
			return fmt.Errorf("-quorum %d must be below the %d-mirror sweep rig so a straggler exists", quorumW, nm)
		}
		fmt.Fprintf(w, "\nQuorum sweep — %d mirrors, one with %v per-write delay (%dx straggler), %d pushes of 4 KiB\n",
			nm, slowFactor*delay, slowFactor, iters)
		fmt.Fprintf(w, "%12s %14s\n", "join", "latency/op")
		arms := []struct {
			label string
			qw    int
		}{{"all-ack", 0}, {fmt.Sprintf("quorum-%d", quorumW), quorumW}}
		for _, arm := range arms {
			var opts []netram.Option
			if arm.qw > 0 {
				opts = append(opts, netram.WithQuorum(arm.qw))
			}
			var mirrors []netram.Mirror
			for i := 0; i < nm; i++ {
				srv := memserver.New(memserver.WithLabel(fmt.Sprintf("q%d", i)))
				tr, err := transport.NewInProc(srv, sci.DefaultParams(), simclock.NewWall())
				if err != nil {
					return err
				}
				d := delay
				if i == nm-1 {
					d = slowFactor * delay
				}
				mirrors = append(mirrors, netram.Mirror{
					Name: srv.Label(), T: &slowWrite{Transport: tr, delay: d},
				})
			}
			c, err := netram.NewClient(mirrors, opts...)
			if err != nil {
				return err
			}
			reg, err := c.Malloc("bench", 64<<10)
			if err != nil {
				return err
			}
			for i := 0; i < 3; i++ { // warm workers and pools
				if err := c.Push(reg, 0, 4096); err != nil {
					return err
				}
			}
			c.WaitCatchUp()
			var timed time.Duration
			for i := 0; i < iters; i++ {
				t0 := time.Now()
				if err := c.Push(reg, uint64(i%16)*4096, 4096); err != nil {
					return err
				}
				timed += time.Since(t0)
				if arm.qw > 0 && (i+1)%32 == 0 {
					// Drain the straggler outside the timed window so the
					// bounded catch-up queue never overflows into a
					// degrade mid-measurement.
					c.WaitCatchUp()
				}
			}
			c.WaitCatchUp()
			perOp := timed / time.Duration(iters)
			fmt.Fprintf(w, "%12s %14s\n", arm.label, perOp.Round(time.Microsecond))
			results = append(results, fanoutResult{
				Mirrors: nm, Mode: "slow-" + arm.label, Quorum: arm.qw, NsPerOp: perOp.Nanoseconds(),
			})
			c.Close()
		}
	}
	out := map[string]any{
		"experiment":     "fanout",
		"write_delay_ns": delay.Nanoseconds(),
		"pushes":         iters,
		"results":        results,
	}
	if quorumW > 0 {
		out["quorum"] = quorumW
	}
	benchResults = out
	return nil
}

// slowPipe wraps a transport with a mutex-serialised fixed service time
// per remote write: a model of one mirror link that handles one write at
// a time. Concurrent committers on the same shard queue behind its pipe;
// committers on different shards proceed on independent pipes — which is
// exactly the capacity argument for sharding, made measurable on the
// wall clock.
type slowPipe struct {
	transport.Transport
	delay time.Duration
	mu    sync.Mutex
}

func (s *slowPipe) Write(seg uint32, offset uint64, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(s.delay)
	return s.Transport.Write(seg, offset, data)
}

func (s *slowPipe) WriteBatch(writes []transport.BatchWrite) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(s.delay)
	if bw, ok := s.Transport.(transport.BatchWriter); ok {
		return bw.WriteBatch(writes)
	}
	for _, wr := range writes {
		if err := s.Transport.Write(wr.Seg, wr.Offset, wr.Data); err != nil {
			return err
		}
	}
	return nil
}

// shardResult is one row of the shard scaling experiment, for -bench-out.
type shardResult struct {
	Shards       int     `json:"shards"`
	Workers      int     `json:"workers"`
	Txs          int     `json:"txs"`
	AggregateTPS float64 `json:"aggregate_tps"`
	SpeedupVs1   float64 `json:"speedup_vs_1"`
}

// runShard measures aggregate single-shard-transaction throughput as the
// region namespace partitions across more router shards. Each shard owns
// one mirror behind a serialised slow pipe; with one shard every worker
// queues behind the same link, with N shards the load spreads over N
// independent links. Named-only: the numbers are wall-clock timing of
// this host, not a reproduced figure.
func runShard(w io.Writer, txs int) error {
	counts, err := parseShardCounts(shardCSV)
	if err != nil {
		return err
	}
	const (
		delay   = 100 * time.Microsecond
		workers = 8
	)
	perWorker := txs / workers
	if perWorker < 10 {
		perWorker = 10
	}
	if perWorker > 250 {
		perWorker = 250
	}
	fmt.Fprintf(w, "Shard scaling — %d workers, %d single-shard txs each, %v serialised link delay per write, wall-clock\n",
		workers, perWorker, delay)
	fmt.Fprintf(w, "%8s %14s %10s\n", "shards", "aggregate tps", "speedup")
	var results []shardResult
	var baseTPS float64
	for _, nShards := range counts {
		tps, err := runShardOnce(nShards, workers, perWorker, delay)
		if err != nil {
			return err
		}
		if baseTPS == 0 {
			baseTPS = tps
		}
		speedup := tps / baseTPS
		results = append(results, shardResult{
			Shards: nShards, Workers: workers, Txs: workers * perWorker,
			AggregateTPS: math.Round(tps), SpeedupVs1: math.Round(speedup*100) / 100,
		})
		fmt.Fprintf(w, "%8d %14.0f %9.2fx\n", nShards, tps, speedup)
	}
	benchResults = map[string]any{
		"experiment":     "shard",
		"write_delay_ns": delay.Nanoseconds(),
		"results":        results,
	}
	return nil
}

// parseShardCounts parses the -shards CSV.
func parseShardCounts(csv string) ([]int, error) {
	var counts []int
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		var n int
		if _, err := fmt.Sscanf(f, "%d", &n); err != nil || n < 1 {
			return nil, fmt.Errorf("-shards: bad shard count %q", f)
		}
		counts = append(counts, n)
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("-shards: no shard counts in %q", csv)
	}
	return counts, nil
}

// runShardOnce builds an nShards router over slow-piped mirrors and
// drives it with workers concurrent committers, each touching only its
// own database, spread evenly across the shards.
func runShardOnce(nShards, workers, perWorker int, delay time.Duration) (tps float64, err error) {
	clock := simclock.NewWall()
	var libs []*core.Library
	for s := 0; s < nShards; s++ {
		srv := memserver.New(memserver.WithLabel(fmt.Sprintf("shard%d-remote-0", s)))
		tr, err := transport.NewInProc(srv, sci.DefaultParams(), clock)
		if err != nil {
			return 0, err
		}
		ram, err := netram.NewClient([]netram.Mirror{
			{Name: srv.Label(), T: &slowPipe{Transport: tr, delay: delay}},
		})
		if err != nil {
			return 0, err
		}
		lib, err := core.Init(ram, clock)
		if err != nil {
			return 0, err
		}
		libs = append(libs, lib)
	}
	r, err := router.New(libs)
	if err != nil {
		return 0, err
	}
	defer r.Close()

	// One database per worker, placed round-robin across the shards by
	// picking names whose hash lands on the wanted shard.
	dbs := make([]engine.DB, workers)
	for w := 0; w < workers; w++ {
		want := w % nShards
		var name string
		for i := 0; ; i++ {
			name = fmt.Sprintf("acct-%d-%d", w, i)
			if r.ShardFor(name) == want {
				break
			}
		}
		db, err := r.CreateDB(name, 1<<20)
		if err != nil {
			return 0, err
		}
		if err := r.InitDB(db); err != nil {
			return 0, err
		}
		dbs[w] = db
	}

	errs := make([]error, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			db := dbs[w]
			buf := db.Bytes()
			for k := 0; k < perWorker; k++ {
				tx, err := r.Begin()
				if err != nil {
					errs[w] = err
					return
				}
				// Four 64-byte account updates per transaction, like the
				// debit-credit records.
				for rg := 0; rg < 4; rg++ {
					off := uint64(rg)*(256<<10) + uint64(k%64)*64
					if err := tx.SetRange(db, off, 64); err != nil {
						errs[w] = err
						_ = tx.Abort()
						return
					}
					buf[off] = byte(k)
				}
				if err := tx.Commit(); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return float64(workers*perWorker) / elapsed.Seconds(), nil
}

func runLatency(w io.Writer, txs int) error {
	var results []bench.Result
	for _, b := range rig.All() {
		lab, err := b.Build(defaultConfig())
		if err != nil {
			return err
		}
		workload, err := bench.NewDebitCredit(0, 0)
		if err != nil {
			return err
		}
		n := txs
		if b.Name == "rvm" || b.Name == "rvm-group" {
			n = min(n, 300)
		}
		res, err := bench.Run(lab.Engine, lab.Clock, workload, n, 42)
		if err != nil {
			return err
		}
		_ = lab.Engine.Close()
		results = append(results, res)
	}
	bench.RenderLatency(w, results)
	return nil
}

func runMixed(w io.Writer, txs int) error {
	fmt.Fprintln(w, "Read/write mix — PERSEAS (reads are local loads)")
	fmt.Fprintf(w, "%12s %12s %12s\n", "read frac", "tps", "per-tx")
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99} {
		lab, err := rig.NewPerseas(defaultConfig())
		if err != nil {
			return err
		}
		workload, err := bench.NewMixed(1<<20, frac, 64)
		if err != nil {
			return err
		}
		res, err := bench.Run(lab.Engine, lab.Clock, workload, txs, 42)
		if err != nil {
			return err
		}
		_ = lab.Engine.Close()
		fmt.Fprintf(w, "%12.2f %12.0f %12v\n", frac, res.TPS, res.PerTx)
	}
	return nil
}

// scaleSCI speeds every interconnect constant up by factor f.
func scaleSCI(p sci.Params, f float64) sci.Params {
	scale := func(d time.Duration) time.Duration {
		v := time.Duration(float64(d) / f)
		if v < time.Nanosecond {
			v = time.Nanosecond
		}
		return v
	}
	p.PIOWordCost = scale(p.PIOWordCost)
	p.PacketBase = scale(p.PacketBase)
	p.Packet64Cost = scale(p.Packet64Cost)
	p.Packet64Streamed = scale(p.Packet64Streamed)
	p.Packet16Cost = scale(p.Packet16Cost)
	p.Packet16Streamed = scale(p.Packet16Streamed)
	p.HopCost = scale(p.HopCost)
	return p
}

// scaleDisk speeds the disk up by factor f.
func scaleDisk(p disk.Params, f float64) disk.Params {
	p.SeekAvg = time.Duration(float64(p.SeekAvg) / f)
	p.RotationalHalf = time.Duration(float64(p.RotationalHalf) / f)
	p.BytesPerSecond *= f
	return p
}

func runTrend(w io.Writer, txs int) error {
	var rows []bench.TrendRow
	for year := 0; year <= 10; year += 2 {
		netF := math.Pow(1.30, float64(year))
		diskF := math.Pow(1.15, float64(year))

		cfg := defaultConfig()
		sp := scaleSCI(sci.DefaultParams(), netF)
		cfg.SCIParams = &sp
		perseasLab, err := rig.NewPerseas(cfg)
		if err != nil {
			return err
		}
		wl, err := bench.NewDebitCredit(0, 0)
		if err != nil {
			return err
		}
		pres, err := bench.Run(perseasLab.Engine, perseasLab.Clock, wl, txs, 42)
		if err != nil {
			return err
		}
		_ = perseasLab.Engine.Close()

		dcfg := defaultConfig()
		dp := scaleDisk(disk.DefaultParams(dcfg.DeviceSize), diskF)
		dcfg.DiskParams = &dp
		dcfg.GroupCommit = true
		rvmLab, err := rig.NewRVM(dcfg)
		if err != nil {
			return err
		}
		wl2, err := bench.NewDebitCredit(0, 0)
		if err != nil {
			return err
		}
		dres, err := bench.Run(rvmLab.Engine, rvmLab.Clock, wl2, min(txs, 400), 42)
		if err != nil {
			return err
		}
		_ = rvmLab.Engine.Close()

		rows = append(rows, bench.TrendRow{
			Year:       year,
			PerseasTPS: pres.TPS,
			DiskTPS:    dres.TPS,
		})
	}
	bench.RenderTrend(w, rows)
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
