// Command perseas-bench regenerates every table and figure of the
// paper's evaluation (Section 5) on the deterministic simulation rig:
//
//	perseas-bench -experiment fig5     # SCI remote-write latency curve
//	perseas-bench -experiment fig6     # transaction overhead vs tx size
//	perseas-bench -experiment table1   # PERSEAS debit-credit / order-entry
//	perseas-bench -experiment compare  # Section 5.1 cross-system table
//	perseas-bench -experiment dbsize   # throughput vs database size
//	perseas-bench -experiment ablate   # design-choice ablations
//	perseas-bench -experiment all      # everything above
//
// All timings are virtual: they come from the calibrated PCI-SCI, disk
// and memory models, so the output is identical on every host.
//
// -experiment commitpath additionally breaks the commit cost into the
// paper's Fig. 3 phases (local undo copy, remote undo push, range push,
// commit-word publish). It runs only when named: the reference outputs
// of -experiment all predate the observability layer and stay
// byte-identical.
//
// -trace-out FILE additionally records every transaction of the run as
// a span tree and writes Chrome/Perfetto trace-event JSON at the end
// (open at ui.perfetto.dev). The recorder only reads the simulated
// clock, so every figure is byte-identical with tracing on or off.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"github.com/ics-forth/perseas/internal/bench"
	"github.com/ics-forth/perseas/internal/core"
	"github.com/ics-forth/perseas/internal/disk"
	"github.com/ics-forth/perseas/internal/engine"
	"github.com/ics-forth/perseas/internal/fault"
	"github.com/ics-forth/perseas/internal/obs"
	"github.com/ics-forth/perseas/internal/rig"
	"github.com/ics-forth/perseas/internal/sci"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/trace"
)

// tracer, when non-nil, records per-transaction spans in every PERSEAS
// lab the experiments build. It never advances the simulated clock, so
// the rendered figures are identical with tracing on or off (pinned by
// TestTracingKeepsOutputByteIdentical).
var tracer *trace.Recorder

func main() {
	experiment := flag.String("experiment", "all",
		"which experiment to run: fig5, fig6, table1, compare, dbsize, ablate, commitpath, all (commitpath is excluded from all; name it explicitly)")
	txs := flag.Int("txs", 2000, "transactions per measurement")
	traceOut := flag.String("trace-out", "",
		"write per-transaction spans as Chrome/Perfetto trace-event JSON to this file at the end of the run")
	traceSlower := flag.Duration("trace-slower-than", 0,
		"keep only transactions at least this slow in modelled time (0 = keep all; with -trace-out)")
	flag.Parse()

	if *traceOut != "" {
		tracer = trace.NewRecorder()
		tracer.Enable()
		tracer.SetSlowerThan(*traceSlower)
	}
	if err := run(os.Stdout, *experiment, *txs); err != nil {
		fmt.Fprintln(os.Stderr, "perseas-bench:", err)
		os.Exit(1)
	}
	if *traceOut != "" {
		if err := writeTraceFile(os.Stdout, *traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "perseas-bench:", err)
			os.Exit(1)
		}
	}
}

// writeTraceFile dumps the tracer's rings as Chrome trace-event JSON.
func writeTraceFile(out io.Writer, path string) error {
	spans := tracer.Snapshot()
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace output: %w", err)
	}
	if err := trace.WriteChromeTrace(f, spans); err != nil {
		f.Close()
		return fmt.Errorf("write trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "trace: %d span(s) written to %s (open at ui.perfetto.dev)\n", len(spans), path)
	return nil
}

// defaultConfig is rig.DefaultConfig plus the process-wide tracer.
func defaultConfig() rig.Config {
	cfg := rig.DefaultConfig()
	cfg.Tracer = tracer
	return cfg
}

func run(w io.Writer, experiment string, txs int) error {
	type exp struct {
		name string
		fn   func(io.Writer, int) error
	}
	all := []exp{
		{"fig5", runFig5},
		{"fig6", runFig6},
		{"table1", runTable1},
		{"compare", runCompare},
		{"dbsize", runDBSize},
		{"ablate", runAblate},
		{"recovery", runRecovery},
		{"trend", runTrend},
		{"latency", runLatency},
		{"mixed", runMixed},
	}
	if experiment == "all" {
		for i, e := range all {
			if i > 0 {
				fmt.Fprintln(w)
			}
			if err := e.fn(w, txs); err != nil {
				return fmt.Errorf("%s: %w", e.name, err)
			}
		}
		fmt.Fprintln(w, "\n(not included: -experiment commitpath — run it by name for the Fig. 3 phase breakdown)")
		return nil
	}
	// commitpath is addressable by name only — adding it to the all
	// slice would change the reference -experiment all output.
	named := append(all, exp{"commitpath", runCommitPath})
	for _, e := range named {
		if e.name == experiment {
			return e.fn(w, txs)
		}
	}
	return fmt.Errorf("unknown experiment %q", experiment)
}

func perseasFactory(cfg rig.Config) bench.LabFactory {
	return func() (engine.Engine, *simclock.SimClock, error) {
		lab, err := rig.NewPerseas(cfg)
		if err != nil {
			return nil, nil, err
		}
		return lab.Engine, lab.Clock, nil
	}
}

func runFig5(w io.Writer, _ int) error {
	if err := bench.RenderFigure5(w, sci.DefaultParams()); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return bench.RenderFigure5Offsets(w, sci.DefaultParams())
}

func runFig6(w io.Writer, txs int) error {
	perSize := txs / 10
	if perSize < 20 {
		perSize = 20
	}
	pts, err := bench.Sweep(perseasFactory(defaultConfig()), 2<<20, bench.Figure6Sizes(), perSize)
	if err != nil {
		return err
	}
	bench.RenderFigure6(w, pts)
	return nil
}

func runTable1(w io.Writer, txs int) error {
	var results []bench.Result
	for _, wl := range []func() (bench.Workload, error){
		func() (bench.Workload, error) { return bench.NewDebitCredit(0, 0) },
		func() (bench.Workload, error) { return bench.NewOrderEntry(0, 0, 0) },
	} {
		lab, err := rig.NewPerseas(defaultConfig())
		if err != nil {
			return err
		}
		workload, err := wl()
		if err != nil {
			return err
		}
		res, err := bench.Run(lab.Engine, lab.Clock, workload, txs, 42)
		if err != nil {
			return err
		}
		_ = lab.Engine.Close()
		results = append(results, res)
	}
	bench.RenderTable1(w, results)
	return nil
}

func runCompare(w io.Writer, txs int) error {
	var results []bench.Result
	workloads := []struct {
		name string
		mk   func() (bench.Workload, error)
	}{
		{"synthetic-64", func() (bench.Workload, error) { return bench.NewSynthetic(1<<20, 64) }},
		{"debit-credit", func() (bench.Workload, error) { return bench.NewDebitCredit(0, 0) }},
		{"order-entry", func() (bench.Workload, error) { return bench.NewOrderEntry(0, 0, 0) }},
	}
	for _, wl := range workloads {
		for _, b := range rig.All() {
			lab, err := b.Build(defaultConfig())
			if err != nil {
				return err
			}
			workload, err := wl.mk()
			if err != nil {
				return err
			}
			n := txs
			if b.Name == "rvm" || b.Name == "rvm-group" {
				// Disk-bound engines: milliseconds of virtual time per
				// transaction; a few hundred suffice for a stable mean.
				n = min(n, 300)
			}
			res, err := bench.Run(lab.Engine, lab.Clock, workload, n, 42)
			if err != nil {
				return fmt.Errorf("%s on %s: %w", wl.name, b.Name, err)
			}
			_ = lab.Engine.Close()
			results = append(results, res)
		}
	}
	bench.RenderComparison(w, results)
	return nil
}

func runDBSize(w io.Writer, txs int) error {
	var rows []bench.DBSizeRow
	for _, branches := range []int{1, 2, 4, 8, 16} {
		lab, err := rig.NewPerseas(defaultConfig())
		if err != nil {
			return err
		}
		workload, err := bench.NewDebitCredit(branches, 2500)
		if err != nil {
			return err
		}
		res, err := bench.Run(lab.Engine, lab.Clock, workload, txs, 42)
		if err != nil {
			return err
		}
		_ = lab.Engine.Close()
		rows = append(rows, bench.DBSizeRow{
			Branches: branches,
			DBBytes:  workload.DBBytes(),
			TPS:      res.TPS,
		})
	}
	bench.RenderDBSize(w, rows)
	return nil
}

func runAblate(w io.Writer, txs int) error {
	configs := []struct {
		name   string
		mutate func(*rig.Config)
	}{
		{"default (1 mirror)", func(*rig.Config) {}},
		{"no 64B alignment", func(c *rig.Config) { c.NoAlignment = true }},
		{"no remote undo (unsafe)", func(c *rig.Config) { c.NoRemoteUndo = true }},
		{"2 mirrors", func(c *rig.Config) { c.Mirrors = 2 }},
		{"3 mirrors", func(c *rig.Config) { c.Mirrors = 3 }},
		// NICs with transparent mirroring support (PRAM, Telegraphos,
		// SHRIMP): replication degree stops costing anything.
		{"2 mirrors, hw mirroring", func(c *rig.Config) { c.Mirrors = 2; c.HardwareMirroring = true }},
		{"3 mirrors, hw mirroring", func(c *rig.Config) { c.Mirrors = 3; c.HardwareMirroring = true }},
	}
	var rows []bench.AblationRow
	for _, c := range configs {
		cfg := defaultConfig()
		c.mutate(&cfg)
		lab, err := rig.NewPerseas(cfg)
		if err != nil {
			return err
		}
		workload, err := bench.NewDebitCredit(0, 0)
		if err != nil {
			return err
		}
		res, err := bench.Run(lab.Engine, lab.Clock, workload, txs, 42)
		if err != nil {
			return err
		}
		_ = lab.Engine.Close()
		rows = append(rows, bench.AblationRow{Config: c.name, TPS: res.TPS, PerTx: res.PerTx})
	}
	// The 64-byte expansion matters most for mid-size unaligned writes,
	// where edge chunks drain as several small packets: show it on the
	// 200-byte synthetic workload too.
	for _, noAlign := range []bool{false, true} {
		cfg := defaultConfig()
		cfg.NoAlignment = noAlign
		lab, err := rig.NewPerseas(cfg)
		if err != nil {
			return err
		}
		workload, err := bench.NewSynthetic(1<<20, 200)
		if err != nil {
			return err
		}
		res, err := bench.Run(lab.Engine, lab.Clock, workload, txs, 42)
		if err != nil {
			return err
		}
		_ = lab.Engine.Close()
		name := "synthetic-200, aligned"
		if noAlign {
			name = "synthetic-200, no alignment"
		}
		rows = append(rows, bench.AblationRow{Config: name, TPS: res.TPS, PerTx: res.PerTx})
	}
	bench.RenderAblation(w, rows)
	return nil
}

func runRecovery(w io.Writer, _ int) error {
	var rows []bench.RecoveryRow
	for _, dbMB := range []uint64{1, 4, 16} {
		lab, err := rig.NewPerseas(defaultConfig())
		if err != nil {
			return err
		}
		size := dbMB << 20
		db, err := lab.Engine.CreateDB("db", size)
		if err != nil {
			return err
		}
		if err := lab.Engine.InitDB(db); err != nil {
			return err
		}
		// Leave a transaction in flight with a handful of ranges so
		// recovery exercises the remote-undo rollback too.
		const ranges = 4
		tx, err := lab.Engine.Begin()
		if err != nil {
			return err
		}
		for r := 0; r < ranges; r++ {
			if err := tx.SetRange(db, uint64(r)*4096, 512); err != nil {
				return err
			}
		}
		if err := lab.Engine.Crash(fault.CrashPower); err != nil {
			return err
		}
		t0 := lab.Clock.Now()
		if err := lab.Engine.Recover(); err != nil {
			return err
		}
		rows = append(rows, bench.RecoveryRow{
			DBBytes:        size,
			InFlightRanges: ranges,
			Elapsed:        lab.Clock.Now() - t0,
		})
		_ = lab.Engine.Close()
	}
	bench.RenderRecovery(w, rows)
	return nil
}

// runCommitPath runs the debit-credit workload and renders the library's
// per-phase commit histograms. On the simulated clock every duration is
// modelled time, so the table is deterministic across hosts.
func runCommitPath(w io.Writer, txs int) error {
	lab, err := rig.NewPerseas(defaultConfig())
	if err != nil {
		return err
	}
	lib, ok := lab.Engine.(*core.Library)
	if !ok {
		return fmt.Errorf("perseas lab engine is %T, not *core.Library", lab.Engine)
	}
	workload, err := bench.NewDebitCredit(0, 0)
	if err != nil {
		return err
	}
	if _, err := bench.Run(lab.Engine, lab.Clock, workload, txs, 42); err != nil {
		return err
	}
	fmt.Fprintln(w, "Commit-path phase breakdown — debit-credit, modelled time")
	obs.WriteLatencyTable(w, "commit path", lib.CommitLatencyRows())
	return lab.Engine.Close()
}

func runLatency(w io.Writer, txs int) error {
	var results []bench.Result
	for _, b := range rig.All() {
		lab, err := b.Build(defaultConfig())
		if err != nil {
			return err
		}
		workload, err := bench.NewDebitCredit(0, 0)
		if err != nil {
			return err
		}
		n := txs
		if b.Name == "rvm" || b.Name == "rvm-group" {
			n = min(n, 300)
		}
		res, err := bench.Run(lab.Engine, lab.Clock, workload, n, 42)
		if err != nil {
			return err
		}
		_ = lab.Engine.Close()
		results = append(results, res)
	}
	bench.RenderLatency(w, results)
	return nil
}

func runMixed(w io.Writer, txs int) error {
	fmt.Fprintln(w, "Read/write mix — PERSEAS (reads are local loads)")
	fmt.Fprintf(w, "%12s %12s %12s\n", "read frac", "tps", "per-tx")
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99} {
		lab, err := rig.NewPerseas(defaultConfig())
		if err != nil {
			return err
		}
		workload, err := bench.NewMixed(1<<20, frac, 64)
		if err != nil {
			return err
		}
		res, err := bench.Run(lab.Engine, lab.Clock, workload, txs, 42)
		if err != nil {
			return err
		}
		_ = lab.Engine.Close()
		fmt.Fprintf(w, "%12.2f %12.0f %12v\n", frac, res.TPS, res.PerTx)
	}
	return nil
}

// scaleSCI speeds every interconnect constant up by factor f.
func scaleSCI(p sci.Params, f float64) sci.Params {
	scale := func(d time.Duration) time.Duration {
		v := time.Duration(float64(d) / f)
		if v < time.Nanosecond {
			v = time.Nanosecond
		}
		return v
	}
	p.PIOWordCost = scale(p.PIOWordCost)
	p.PacketBase = scale(p.PacketBase)
	p.Packet64Cost = scale(p.Packet64Cost)
	p.Packet64Streamed = scale(p.Packet64Streamed)
	p.Packet16Cost = scale(p.Packet16Cost)
	p.Packet16Streamed = scale(p.Packet16Streamed)
	p.HopCost = scale(p.HopCost)
	return p
}

// scaleDisk speeds the disk up by factor f.
func scaleDisk(p disk.Params, f float64) disk.Params {
	p.SeekAvg = time.Duration(float64(p.SeekAvg) / f)
	p.RotationalHalf = time.Duration(float64(p.RotationalHalf) / f)
	p.BytesPerSecond *= f
	return p
}

func runTrend(w io.Writer, txs int) error {
	var rows []bench.TrendRow
	for year := 0; year <= 10; year += 2 {
		netF := math.Pow(1.30, float64(year))
		diskF := math.Pow(1.15, float64(year))

		cfg := defaultConfig()
		sp := scaleSCI(sci.DefaultParams(), netF)
		cfg.SCIParams = &sp
		perseasLab, err := rig.NewPerseas(cfg)
		if err != nil {
			return err
		}
		wl, err := bench.NewDebitCredit(0, 0)
		if err != nil {
			return err
		}
		pres, err := bench.Run(perseasLab.Engine, perseasLab.Clock, wl, txs, 42)
		if err != nil {
			return err
		}
		_ = perseasLab.Engine.Close()

		dcfg := defaultConfig()
		dp := scaleDisk(disk.DefaultParams(dcfg.DeviceSize), diskF)
		dcfg.DiskParams = &dp
		dcfg.GroupCommit = true
		rvmLab, err := rig.NewRVM(dcfg)
		if err != nil {
			return err
		}
		wl2, err := bench.NewDebitCredit(0, 0)
		if err != nil {
			return err
		}
		dres, err := bench.Run(rvmLab.Engine, rvmLab.Clock, wl2, min(txs, 400), 42)
		if err != nil {
			return err
		}
		_ = rvmLab.Engine.Close()

		rows = append(rows, bench.TrendRow{
			Year:       year,
			PerseasTPS: pres.TPS,
			DiskTPS:    dres.TPS,
		})
	}
	bench.RenderTrend(w, rows)
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
