package main

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ics-forth/perseas/internal/core"
	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/obs"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/transport"
	"github.com/ics-forth/perseas/internal/txclient"
	"github.com/ics-forth/perseas/internal/txserver"
)

// serverResult is one cell of the server group-commit sweep, for
// -bench-out.
type serverResult struct {
	Clients  int     `json:"clients"`
	Mode     string  `json:"mode"`
	TPS      float64 `json:"tps"`
	P50us    float64 `json:"p50_us"`
	P99us    float64 `json:"p99_us"`
	BatchP50 uint64  `json:"batch_p50"`
	BatchP99 uint64  `json:"batch_p99"`
	BatchMax uint64  `json:"batch_max"`
}

// runServer measures the transaction front door's cross-client group
// commit against serial commits, sweeping the client count. Each cell
// is a complete installation — two loopback TCP mirrors, an engine, a
// tx server on a real listener — driven closed-loop by C txclient
// processes that each own a private 8-byte slot of one shared table, so
// conflicts never pollute the measurement: the sweep isolates what the
// commit policy does to throughput and tail latency as clients pile up.
func runServer(w io.Writer, _ int) error {
	counts, err := parseShardCounts(serverClientsCSV)
	if err != nil {
		return fmt.Errorf("-server-clients: %w", err)
	}
	fmt.Fprintf(w, "Server group commit — %v per cell, 2 loopback TCP mirrors, private-slot increments, wall-clock\n", serverCellDur)
	fmt.Fprintf(w, "%8s %7s %10s %12s %12s %18s\n",
		"clients", "mode", "tx/s", "p50", "p99", "batch p50/p99/max")
	var results []serverResult
	for _, c := range counts {
		for _, mode := range []txserver.CommitMode{txserver.GroupCommit, txserver.SerialCommit} {
			res, err := runServerCell(c, mode)
			if err != nil {
				return fmt.Errorf("%d clients, %s: %w", c, mode, err)
			}
			results = append(results, *res)
			fmt.Fprintf(w, "%8d %7s %10.0f %12s %12s %11d/%d/%d\n",
				res.Clients, res.Mode, res.TPS,
				time.Duration(res.P50us*1e3).Round(time.Microsecond),
				time.Duration(res.P99us*1e3).Round(time.Microsecond),
				res.BatchP50, res.BatchP99, res.BatchMax)
		}
	}
	benchResults = map[string]any{
		"experiment":  "server",
		"cell_dur_ns": serverCellDur.Nanoseconds(),
		"mirrors":     2,
		"results":     results,
	}
	return nil
}

// runServerCell runs one (clients, mode) cell and reports its row.
func runServerCell(clients int, mode txserver.CommitMode) (*serverResult, error) {
	// The installation: two loopback TCP mirrors under a wall-clock
	// engine, fronted by a tx server with the cell's commit policy.
	var closers []io.Closer
	defer func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i].Close()
		}
	}()
	var mirrors []netram.Mirror
	for i := 0; i < 2; i++ {
		ms := memserver.New(memserver.WithLabel(fmt.Sprintf("bench-mirror-%d", i)))
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		go func() { _ = transport.Serve(l, ms) }()
		closers = append(closers, l)
		tr, err := transport.DialTCP(l.Addr().String())
		if err != nil {
			return nil, err
		}
		closers = append(closers, tr)
		mirrors = append(mirrors, netram.Mirror{Name: l.Addr().String(), T: tr})
	}
	ram, err := netram.NewClient(mirrors)
	if err != nil {
		return nil, err
	}
	lib, err := core.Init(ram, simclock.NewWall())
	if err != nil {
		return nil, err
	}
	srv := txserver.New(lib, txserver.WithCommitMode(mode), txserver.WithMaxTxs(2*clients+16))
	fl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	closers = append(closers, fl)
	go func() { _ = srv.Serve(fl) }()
	addr := fl.Addr().String()

	setup, err := txclient.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer setup.Close()
	size := uint64(clients) * 8
	db, err := setup.CreateDB("slots", size)
	if err != nil {
		return nil, err
	}
	if err := setup.InitDB(db); err != nil {
		return nil, err
	}

	fleet := make([]*txclient.Client, clients)
	defer func() {
		for _, cl := range fleet {
			if cl != nil {
				cl.Close()
			}
		}
	}()
	var rampWg sync.WaitGroup
	rampErrs := make([]error, clients)
	sem := make(chan struct{}, 256)
	for i := range fleet {
		i := i
		rampWg.Add(1)
		sem <- struct{}{}
		go func() {
			defer rampWg.Done()
			defer func() { <-sem }()
			fleet[i], rampErrs[i] = txclient.Dial(addr, txclient.WithConns(1))
		}()
	}
	rampWg.Wait()
	for _, err := range rampErrs {
		if err != nil {
			return nil, err
		}
	}

	var lat obs.Histogram
	var committed atomic.Uint64
	var stop atomic.Bool
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := fleet[i]
			d, err := cl.OpenDB("slots")
			if err != nil {
				errs[i] = err
				return
			}
			slot := uint64(i) * 8
			// With more clients than engine transaction slots, Begin
			// pushes back with a busy error; back off exponentially so
			// the measurement reflects commit throughput, not a retry
			// storm at the admission gate.
			busyWait := time.Millisecond
			for !stop.Load() {
				t0 := time.Now()
				tx, err := cl.Begin()
				if errors.Is(err, txclient.ErrBusy) {
					time.Sleep(busyWait)
					if busyWait < 250*time.Millisecond {
						busyWait *= 2
					}
					continue
				}
				if err != nil {
					errs[i] = err
					return
				}
				busyWait = time.Millisecond
				if err := tx.SetRange(d, slot, 8); err != nil {
					errs[i] = err
					return
				}
				binary.BigEndian.PutUint64(d.Bytes()[slot:slot+8],
					binary.BigEndian.Uint64(d.Bytes()[slot:slot+8])+1)
				if err := tx.Commit(); err != nil {
					errs[i] = err
					return
				}
				lat.ObserveDuration(time.Since(t0))
				committed.Add(1)
			}
		}()
	}
	start := time.Now()
	time.Sleep(serverCellDur)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("client %d: %w", i, err)
		}
	}

	st := srv.Stats()
	snap := lat.Snapshot()
	return &serverResult{
		Clients:  clients,
		Mode:     mode.String(),
		TPS:      math.Round(float64(committed.Load()) / elapsed.Seconds()),
		P50us:    math.Round(snap.Quantile(0.50) / 1e3),
		P99us:    math.Round(snap.Quantile(0.99) / 1e3),
		BatchP50: st.BatchP50,
		BatchP99: st.BatchP99,
		BatchMax: st.BatchMax,
	}, nil
}
