package main

import (
	"strings"
	"testing"
)

func TestRunEachExperiment(t *testing.T) {
	tests := []struct {
		experiment string
		wantSubstr []string
	}{
		{"fig5", []string{"Figure 5", "2.70"}},
		{"fig6", []string{"Figure 6", "1048576"}},
		{"table1", []string{"Table 1", "debit-credit", "order-entry"}},
		{"dbsize", []string{"branches", "751100"}},
		{"ablate", []string{"no remote undo", "3 mirrors", "synthetic-200"}},
		{"commitpath", []string{"commit path", "local undo copy", "commit word push", "p99(us)"}},
	}
	for _, tt := range tests {
		t.Run(tt.experiment, func(t *testing.T) {
			var sb strings.Builder
			if err := run(&sb, tt.experiment, 60); err != nil {
				t.Fatal(err)
			}
			out := sb.String()
			for _, want := range tt.wantSubstr {
				if !strings.Contains(out, want) {
					t.Errorf("output of %s missing %q:\n%s", tt.experiment, want, out)
				}
			}
		})
	}
}

func TestRunCompare(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "compare", 60); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, engine := range []string{"perseas", "rvm", "rvm-group", "rvm-rio", "vista", "wal-net"} {
		if !strings.Contains(out, engine) {
			t.Errorf("comparison missing engine %q", engine)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "nope", 10); err == nil {
		t.Error("unknown experiment should fail")
	}
}
