package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/ics-forth/perseas/internal/flight"
	"github.com/ics-forth/perseas/internal/trace"
)

func TestRunEachExperiment(t *testing.T) {
	tests := []struct {
		experiment string
		wantSubstr []string
	}{
		{"fig5", []string{"Figure 5", "2.70"}},
		{"fig6", []string{"Figure 6", "1048576"}},
		{"table1", []string{"Table 1", "debit-credit", "order-entry"}},
		{"dbsize", []string{"branches", "751100"}},
		{"ablate", []string{"no remote undo", "3 mirrors", "synthetic-200"}},
		{"commitpath", []string{"commit path", "local undo copy", "commit word push", "p99(us)"}},
	}
	for _, tt := range tests {
		t.Run(tt.experiment, func(t *testing.T) {
			var sb strings.Builder
			if err := run(&sb, tt.experiment, 60); err != nil {
				t.Fatal(err)
			}
			out := sb.String()
			for _, want := range tt.wantSubstr {
				if !strings.Contains(out, want) {
					t.Errorf("output of %s missing %q:\n%s", tt.experiment, want, out)
				}
			}
		})
	}
}

func TestRunCompare(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "compare", 60); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, engine := range []string{"perseas", "rvm", "rvm-group", "rvm-rio", "vista", "wal-net"} {
		if !strings.Contains(out, engine) {
			t.Errorf("comparison missing engine %q", engine)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "nope", 10); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestRunAllMentionsCommitPath(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "all", 60); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "-experiment commitpath") {
		t.Error("-experiment all output should hint that commitpath runs only when named")
	}
}

// TestTracingKeepsOutputByteIdentical pins the acceptance criterion of
// the tracing layer: the recorder only reads the simulated clock, so
// enabling it — with or without a slower-than filter — must leave the
// reproduced figures byte-identical.
func TestTracingKeepsOutputByteIdentical(t *testing.T) {
	defer func() { tracer = nil }()
	for _, experiment := range []string{"fig6", "compare"} {
		t.Run(experiment, func(t *testing.T) {
			tracer = nil
			var base strings.Builder
			if err := run(&base, experiment, 60); err != nil {
				t.Fatal(err)
			}

			tracer = trace.NewRecorder()
			tracer.Enable()
			var traced strings.Builder
			if err := run(&traced, experiment, 60); err != nil {
				t.Fatal(err)
			}
			if traced.String() != base.String() {
				t.Error("output changed with tracing enabled")
			}
			if len(tracer.Snapshot()) == 0 {
				t.Error("tracing enabled but no spans recorded")
			}

			tracer = trace.NewRecorder()
			tracer.Enable()
			tracer.SetSlowerThan(time.Hour) // filters every transaction
			var filtered strings.Builder
			if err := run(&filtered, experiment, 60); err != nil {
				t.Fatal(err)
			}
			if filtered.String() != base.String() {
				t.Error("output changed with -trace-slower-than filtering")
			}
		})
	}
}

// TestFlightRecorderKeepsOutputByteIdentical pins the flight
// recorder's figure-neutrality: the recorder reads the clock only when
// an anomaly fires and a healthy lab produces none, so enabling it —
// alone or together with tracing — must not move a byte of output.
func TestFlightRecorderKeepsOutputByteIdentical(t *testing.T) {
	defer func() { tracer = nil; flightRec = nil }()
	for _, experiment := range []string{"fig5", "fig6", "table1", "compare"} {
		t.Run(experiment, func(t *testing.T) {
			tracer, flightRec = nil, nil
			var base strings.Builder
			if err := run(&base, experiment, 60); err != nil {
				t.Fatal(err)
			}

			flightRec = flight.New(0)
			flightRec.Enable()
			var recorded strings.Builder
			if err := run(&recorded, experiment, 60); err != nil {
				t.Fatal(err)
			}
			if recorded.String() != base.String() {
				t.Error("output changed with the flight recorder enabled")
			}
			// A healthy simulated lab produces no anomalies; a nonzero
			// count here would mean the figures exercised a degraded path.
			if n := flightRec.Total(); n != 0 {
				t.Errorf("healthy lab recorded %d anomaly events", n)
			}

			tracer = trace.NewRecorder()
			tracer.Enable()
			flightRec = flight.New(0)
			flightRec.Enable()
			var both strings.Builder
			if err := run(&both, experiment, 60); err != nil {
				t.Fatal(err)
			}
			if both.String() != base.String() {
				t.Error("output changed with tracing and the flight recorder enabled together")
			}
		})
	}
}

// TestSingleShardOutputByteIdentical pins the acceptance criterion of
// the shard router: at one shard the router is a pure pass-through —
// same mirrors, same labels, same commit path — so routing every figure
// experiment through it must not move a byte of output.
func TestSingleShardOutputByteIdentical(t *testing.T) {
	defer func() { routerSingle = false }()
	for _, experiment := range []string{"fig5", "fig6", "table1", "compare"} {
		t.Run(experiment, func(t *testing.T) {
			routerSingle = false
			var base strings.Builder
			if err := run(&base, experiment, 60); err != nil {
				t.Fatal(err)
			}
			routerSingle = true
			var routed strings.Builder
			if err := run(&routed, experiment, 60); err != nil {
				t.Fatal(err)
			}
			if routed.String() != base.String() {
				t.Errorf("output of %s changed behind a single-shard router", experiment)
			}
		})
	}
}

// TestRunShardExperiment smokes the shard scaling sweep: both counts
// must complete, produce machine-readable rows, and the second shard
// must buy real aggregate throughput (the full ≥1.6x criterion is
// recorded by BENCH_shard.json; the tripwire here is looser so a loaded
// CI host cannot flake it).
func TestRunShardExperiment(t *testing.T) {
	oldCSV, oldResults := shardCSV, benchResults
	defer func() { shardCSV, benchResults = oldCSV, oldResults }()
	shardCSV = "1,2"
	var sb strings.Builder
	if err := run(&sb, "shard", 160); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Shard scaling") {
		t.Errorf("missing header:\n%s", out)
	}
	payload, ok := benchResults.(map[string]any)
	if !ok {
		t.Fatalf("benchResults = %T, want map", benchResults)
	}
	rows, ok := payload["results"].([]shardResult)
	if !ok || len(rows) != 2 {
		t.Fatalf("results = %#v, want 2 rows", payload["results"])
	}
	if rows[1].SpeedupVs1 < 1.3 {
		t.Errorf("2-shard speedup = %.2fx, want at least 1.3x", rows[1].SpeedupVs1)
	}
}

// TestRunRecoverySweep pins the sweep's gate and smoke-checks the
// speedups: without -bench-out the recovery experiment renders only the
// reference table; with it the table still renders first, byte for
// byte, followed by the wall-clock recovery and rebuild sweeps (the
// full ≥2x / ≥1.5x criteria are recorded by BENCH_recovery.json; the
// tripwires here are looser so a loaded CI host cannot flake them).
func TestRunRecoverySweep(t *testing.T) {
	oldPath, oldResults := benchOutPath, benchResults
	defer func() { benchOutPath, benchResults = oldPath, oldResults }()
	benchOutPath = ""
	var base strings.Builder
	if err := run(&base, "recovery", 60); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(base.String(), "sweep") {
		t.Error("sweep ran without -bench-out")
	}
	benchOutPath = filepath.Join(t.TempDir(), "rec.json")
	benchResults = nil
	var swept strings.Builder
	if err := run(&swept, "recovery", 60); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(swept.String(), base.String()) {
		t.Error("-bench-out changed the reference recovery table")
	}
	payload, ok := benchResults.(map[string]any)
	if !ok {
		t.Fatalf("benchResults = %T, want map", benchResults)
	}
	recRows, ok := payload["recovery"].(map[string]any)["rows"].([]recoverSweepRow)
	if !ok || len(recRows) != 3 {
		t.Fatalf("recovery rows = %#v, want 3", payload["recovery"])
	}
	if last := recRows[len(recRows)-1]; last.SpeedupVs1 < 1.4 {
		t.Errorf("4-worker recovery speedup = %.2fx, want at least 1.4x", last.SpeedupVs1)
	}
	rebRows, ok := payload["rebuild"].(map[string]any)["rows"].([]rebuildSweepRow)
	if !ok || len(rebRows) != 2 {
		t.Fatalf("rebuild rows = %#v, want 2", payload["rebuild"])
	}
	if last := rebRows[len(rebRows)-1]; last.SpeedupVs1 < 1.2 {
		t.Errorf("depth-2 rebuild speedup = %.2fx, want at least 1.2x", last.SpeedupVs1)
	}
}

func TestWriteTraceFile(t *testing.T) {
	defer func() { tracer = nil }()
	tracer = trace.NewRecorder()
	tracer.Enable()
	var sb strings.Builder
	if err := run(&sb, "fig6", 60); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.trace.json")
	var out strings.Builder
	if err := writeTraceFile(&out, path); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "trace: ") {
		t.Errorf("missing trace summary line: %q", out.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spans, err := trace.ReadChromeTrace(f)
	if err != nil {
		t.Fatalf("trace file does not parse: %v", err)
	}
	if len(spans) == 0 {
		t.Fatal("trace file holds no spans")
	}
}
