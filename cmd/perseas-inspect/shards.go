package main

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"github.com/ics-forth/perseas/internal/core"
	"github.com/ics-forth/perseas/internal/guardian"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/transport"
)

// shardReport is one shard's decoded health and topology row.
type shardReport struct {
	mirrors   []string
	live      int
	state     string
	regions   uint64
	bytesHeld uint64
	dbs       int
	inflight  int
	committed uint64
	err       error
}

// parseShardSpec splits "h1,h2;h3,h4" into per-shard mirror address
// groups: shards are separated by semicolons, a shard's mirrors by
// commas.
func parseShardSpec(spec string) ([][]string, error) {
	var shards [][]string
	for _, group := range strings.Split(spec, ";") {
		var addrs []string
		for _, a := range strings.Split(group, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		if len(addrs) > 0 {
			shards = append(shards, addrs)
		}
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("-shards: no addresses given")
	}
	return shards, nil
}

// renderShards probes every shard of a partitioned deployment — shard
// groups separated by semicolons, mirrors within a group by commas —
// and renders one topology row per shard: mirror liveness (a one-shot
// guardian pass over the group), exported region count and bytes, the
// database directory decoded from the metadata region, and the number
// of in-flight transactions (undo slots whose head record outruns the
// slot's commit word — exactly the transactions holding conflict-table
// claims). Reports whether every shard has its full mirror set healthy.
func renderShards(out io.Writer, spec string) (bool, error) {
	groups, err := parseShardSpec(spec)
	if err != nil {
		return false, err
	}

	reports := make([]shardReport, len(groups))
	for s, addrs := range groups {
		reports[s] = probeShard(addrs)
	}

	fmt.Fprintln(out, "SHARDS:")
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "SHARD\tMIRRORS\tLIVE\tSTATE\tREGIONS\tBYTES\tDBS\tINFLIGHT\tCOMMITTED")
	healthy := true
	for s, r := range reports {
		if r.live < len(r.mirrors) || r.err != nil {
			healthy = false
		}
		detail := fmt.Sprintf("%d/%d", r.live, len(r.mirrors))
		if r.err != nil {
			fmt.Fprintf(w, "%d\t%s\t%s\t%s\t-\t-\t-\t-\t-\n",
				s, strings.Join(r.mirrors, ","), detail, r.err)
			continue
		}
		fmt.Fprintf(w, "%d\t%s\t%s\t%s\t%d\t%d\t%d\t%d\t%d\n",
			s, strings.Join(r.mirrors, ","), detail, r.state,
			r.regions, r.bytesHeld, r.dbs, r.inflight, r.committed)
	}
	w.Flush()
	if healthy {
		fmt.Fprintf(out, "health: all %d shards healthy\n", len(reports))
	} else {
		fmt.Fprintf(out, "health: DEGRADED — %d shard(s) checked, not all healthy\n", len(reports))
	}
	return healthy, nil
}

// probeShard examines one shard's mirror group. Health comes from a
// one-shot guardian pass; topology is decoded from the first reachable
// mirror — every mirror of a shard exports the same region set, so one
// answering node describes the whole shard.
func probeShard(addrs []string) shardReport {
	r := shardReport{mirrors: addrs}
	var ms []netram.Mirror
	var tcps []*transport.TCP
	for _, addr := range addrs {
		tr, err := transport.DialTCP(addr)
		if err != nil {
			continue
		}
		defer tr.Close()
		ms = append(ms, netram.Mirror{Name: addr, T: tr})
		tcps = append(tcps, tr)
	}
	if len(ms) == 0 {
		r.state = "dead"
		r.err = fmt.Errorf("no mirror reachable")
		return r
	}

	client, err := netram.NewClient(ms)
	if err != nil {
		r.err = err
		return r
	}
	g, err := guardian.New(client, simclock.NewWall(), guardian.Config{Misses: 1})
	if err != nil {
		r.err = err
		return r
	}
	g.Poll()
	for _, row := range g.Status() {
		if row.State == guardian.Healthy {
			r.live++
		}
	}
	switch {
	case r.live == len(addrs):
		r.state = "healthy"
	case r.live > 0:
		r.state = "degraded"
	default:
		r.state = "dead"
	}

	cli := tcps[0]
	stats, err := cli.Stats()
	if err != nil {
		r.err = fmt.Errorf("stats: %w", err)
		return r
	}
	r.regions = uint64(stats.Segments)
	r.bytesHeld = stats.BytesHeld

	meta, err := fetchSegment(cli, core.MetaSegmentName(""))
	if err != nil {
		r.err = fmt.Errorf("metadata region: %w", err)
		return r
	}
	info, err := core.InspectMeta(meta)
	if err != nil {
		r.err = fmt.Errorf("decode metadata: %w", err)
		return r
	}
	r.dbs = len(info.DBs)
	r.committed = info.Committed

	// An undo slot whose head record's transaction id is above the
	// slot's commit word is mid-flight: its writer holds claims in the
	// shard's conflict table right now.
	for k := 0; k < core.MaxUndoSlots; k++ {
		log, err := fetchSegment(cli, core.UndoSegmentName("", k))
		if err != nil {
			continue // slot never allocated
		}
		if txID, ok := core.UndoHeadTxID(log); ok && txID > core.SlotCommitWord(meta, k) {
			r.inflight++
		}
	}
	return r
}

// fetchSegment connects to a named segment and reads it whole.
func fetchSegment(cli *transport.TCP, name string) ([]byte, error) {
	h, err := cli.Connect(name)
	if err != nil {
		return nil, err
	}
	const chunk = 64 << 10
	buf := make([]byte, h.Size)
	for off := uint64(0); off < h.Size; off += chunk {
		n := uint32(chunk)
		if rest := h.Size - off; rest < chunk {
			n = uint32(rest)
		}
		data, err := cli.Read(h.ID, off, n)
		if err != nil {
			return nil, err
		}
		copy(buf[off:], data)
	}
	return buf, nil
}
