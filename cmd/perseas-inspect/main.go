// Command perseas-inspect examines a running remote-memory server: the
// segments it exports, how much memory they pin, and the traffic it has
// absorbed. With -diff it audits two mirror nodes against each other,
// reporting any segment whose contents diverge — useful for checking
// mirror health before taking a node down.
//
//	perseas-inspect -server host1:7070
//	perseas-inspect -server host1:7070 -diff host2:7070
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"text/tabwriter"

	"github.com/ics-forth/perseas/internal/transport"
	"github.com/ics-forth/perseas/internal/wire"
)

func main() {
	server := flag.String("server", "127.0.0.1:7070", "memory server address")
	diff := flag.String("diff", "", "second server to audit against (compare named segments byte-for-byte)")
	flag.Parse()

	cli, err := transport.DialTCP(*server)
	if err != nil {
		log.Fatalf("perseas-inspect: %v", err)
	}
	defer cli.Close()

	if err := cli.Ping(); err != nil {
		log.Fatalf("perseas-inspect: node unreachable: %v", err)
	}
	stats, err := cli.Stats()
	if err != nil {
		log.Fatalf("perseas-inspect: stats: %v", err)
	}
	segs, err := cli.List()
	if err != nil {
		log.Fatalf("perseas-inspect: list: %v", err)
	}

	renderNode(os.Stdout, *server, stats, segs)

	if *diff == "" {
		return
	}
	other, err := transport.DialTCP(*diff)
	if err != nil {
		log.Fatalf("perseas-inspect: dial %s: %v", *diff, err)
	}
	defer other.Close()
	divergent, err := auditMirrors(cli, other, segs)
	if err != nil {
		log.Fatalf("perseas-inspect: audit: %v", err)
	}
	if len(divergent) == 0 {
		fmt.Printf("audit: every named segment matches %s\n", *diff)
		return
	}
	for _, d := range divergent {
		fmt.Printf("audit: DIVERGENT %s\n", d)
	}
	os.Exit(2)
}

// renderNode prints one server's counters and segment table, including
// how often each lifecycle operation ran and how many client references
// each segment currently holds.
func renderNode(out io.Writer, server string, stats wire.ServerStats, segs []wire.SegmentInfo) {
	fmt.Fprintf(out, "node %s: %d segments, %d bytes exported\n", server, stats.Segments, stats.BytesHeld)
	fmt.Fprintf(out, "traffic: %d writes (%d bytes), %d reads (%d bytes), %d batched exchanges\n",
		stats.WriteOps, stats.BytesWritten, stats.ReadOps, stats.BytesRead, stats.BatchOps)
	fmt.Fprintf(out, "lifecycle: %d mallocs, %d frees, %d connects, %d disconnects\n",
		stats.Mallocs, stats.Frees, stats.Connects, stats.Disconnects)
	if len(segs) > 0 {
		w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "ID\tSIZE\tCONNS\tNAME")
		for _, s := range segs {
			name := s.Name
			if name == "" {
				name = "(anonymous)"
			}
			fmt.Fprintf(w, "%d\t%d\t%d\t%s\n", s.ID, s.Size, s.Conns, name)
		}
		w.Flush()
	}
}

// auditMirrors compares every named segment of a with its namesake on b,
// chunk by chunk, and describes each divergence.
func auditMirrors(a, b *transport.TCP, segs []wire.SegmentInfo) ([]string, error) {
	const chunk = 64 << 10
	var divergent []string
	for _, s := range segs {
		if s.Name == "" {
			continue // anonymous segments have no cross-node identity
		}
		hb, err := b.Connect(s.Name)
		if err != nil {
			divergent = append(divergent, fmt.Sprintf("%s: missing on peer (%v)", s.Name, err))
			continue
		}
		if hb.Size != s.Size {
			divergent = append(divergent,
				fmt.Sprintf("%s: size %d vs %d", s.Name, s.Size, hb.Size))
			continue
		}
		for off := uint64(0); off < s.Size; off += chunk {
			n := uint32(chunk)
			if rest := s.Size - off; rest < chunk {
				n = uint32(rest)
			}
			da, err := a.Read(s.ID, off, n)
			if err != nil {
				return nil, fmt.Errorf("read %s@%d from primary: %w", s.Name, off, err)
			}
			db, err := b.Read(hb.ID, off, n)
			if err != nil {
				return nil, fmt.Errorf("read %s@%d from peer: %w", s.Name, off, err)
			}
			if !bytes.Equal(da, db) {
				for i := range da {
					if da[i] != db[i] {
						divergent = append(divergent,
							fmt.Sprintf("%s: first difference at byte %d", s.Name, off+uint64(i)))
						break
					}
				}
				break
			}
		}
	}
	return divergent, nil
}
