// Command perseas-inspect examines a running remote-memory server: the
// segments it exports, how much memory they pin, and the traffic it has
// absorbed. With -diff it audits two mirror nodes against each other,
// reporting any segment whose contents diverge — useful for checking
// mirror health before taking a node down.
//
//	perseas-inspect -server host1:7070
//	perseas-inspect -server host1:7070 -diff host2:7070
//
// When -server points at a perseas-server -tx transaction front door
// instead of a raw memory node, the tool detects it and renders the
// server's live state — connections, pipeline depth and group-commit
// batch summaries, admission rejections — instead of a segment table:
//
//	perseas-inspect -server host1:7080
//
// With -mirrors, it probes a whole mirror set through the guardian's
// failure detector and renders one health row per node — state, last
// heartbeat, round-trip p99 over ~32 timed probes, degradation count
// and rebuild bytes — exiting non-zero if
// any mirror is unhealthy:
//
//	perseas-inspect -mirrors host1:7070,host2:7070,host3:7070
//
// With -shards, it examines a partitioned deployment — shard mirror
// groups separated by semicolons — and renders one health/topology row
// per shard: mirror liveness, exported regions and bytes, database
// count, in-flight transactions (conflict-table occupancy) and the
// shard's commit word, exiting non-zero unless every shard has its full
// mirror set healthy:
//
//	perseas-inspect -shards "h1:7070,h2:7070;h3:7070,h4:7070"
//
// With -traces, it reads one or more Chrome/Perfetto trace-event files
// written by perseas-stress -trace-out or perseas-bench -trace-out and
// renders the slowest-transactions report without needing a browser.
// Multiple comma-separated captures — say a client-process file and a
// server-process file from the same run — are merged onto a shared
// clock, and the report counts how many transactions stitched across
// processes:
//
//	perseas-inspect -traces client.trace.json,server.trace.json
//
// With -cluster, it fetches a running process's /debug/cluster snapshot
// and renders it as a terminal table; -watch redraws it at an interval,
// turning the tool into a live top-style cluster view:
//
//	perseas-inspect -cluster http://host:9090 -watch 1s
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"github.com/ics-forth/perseas/internal/cluster"
	"github.com/ics-forth/perseas/internal/guardian"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/trace"
	"github.com/ics-forth/perseas/internal/transport"
	"github.com/ics-forth/perseas/internal/txclient"
	"github.com/ics-forth/perseas/internal/wire"
)

func main() {
	server := flag.String("server", "127.0.0.1:7070", "memory server address")
	diff := flag.String("diff", "", "second server to audit against (compare named segments byte-for-byte)")
	mirrors := flag.String("mirrors", "", "comma-separated mirror set to health-check (renders a MIRRORS section)")
	shards := flag.String("shards", "", "semicolon-separated shard mirror groups to health-check (renders a SHARDS section)")
	traces := flag.String("traces", "", "comma-separated trace-event JSON file(s) (from -trace-out) to merge and render as a slowest-transactions report")
	topK := flag.Int("top", 10, "how many transactions the -traces report ranks")
	clusterURL := flag.String("cluster", "", "fetch a /debug/cluster snapshot from this metrics address or URL and render it")
	watch := flag.Duration("watch", 0, "-cluster: redraw the view at this interval (0 = render once)")
	flag.Parse()

	if *traces != "" {
		if err := renderTraces(os.Stdout, *traces, *topK); err != nil {
			log.Fatalf("perseas-inspect: %v", err)
		}
		return
	}

	if *clusterURL != "" {
		if err := renderCluster(os.Stdout, *clusterURL, *watch); err != nil {
			log.Fatalf("perseas-inspect: %v", err)
		}
		return
	}

	if *shards != "" {
		healthy, err := renderShards(os.Stdout, *shards)
		if err != nil {
			log.Fatalf("perseas-inspect: %v", err)
		}
		if !healthy {
			os.Exit(2)
		}
		return
	}

	if *mirrors != "" {
		healthy, err := renderMirrors(os.Stdout, *mirrors)
		if err != nil {
			log.Fatalf("perseas-inspect: %v", err)
		}
		if !healthy {
			os.Exit(2)
		}
		return
	}

	// A transaction front door and a memory node share the listen-port
	// convention, so probe for the tx API first: a memory node answers
	// the stats opcode with a typed error and the probe falls through.
	if st, ok := probeTxServer(*server); ok {
		renderTxServer(os.Stdout, *server, st)
		return
	}

	cli, err := transport.DialTCP(*server)
	if err != nil {
		log.Fatalf("perseas-inspect: %v", err)
	}
	defer cli.Close()

	if err := cli.Ping(); err != nil {
		log.Fatalf("perseas-inspect: node unreachable: %v", err)
	}
	stats, err := cli.Stats()
	if err != nil {
		log.Fatalf("perseas-inspect: stats: %v", err)
	}
	segs, err := cli.List()
	if err != nil {
		log.Fatalf("perseas-inspect: list: %v", err)
	}

	renderNode(os.Stdout, *server, stats, segs)

	if *diff == "" {
		return
	}
	other, err := transport.DialTCP(*diff)
	if err != nil {
		log.Fatalf("perseas-inspect: dial %s: %v", *diff, err)
	}
	defer other.Close()
	divergent, err := auditMirrors(cli, other, segs)
	if err != nil {
		log.Fatalf("perseas-inspect: audit: %v", err)
	}
	if len(divergent) == 0 {
		fmt.Printf("audit: every named segment matches %s\n", *diff)
		return
	}
	for _, d := range divergent {
		fmt.Printf("audit: DIVERGENT %s\n", d)
	}
	os.Exit(2)
}

// renderTraces loads one or more Chrome trace-event files, merges them
// onto a shared clock, and renders the top-k slowest-transactions
// report. With more than one capture it also reports how many
// transactions stitched across process boundaries — the count a
// distributed capture exists to produce.
func renderTraces(out io.Writer, pathsCSV string, topK int) error {
	var captures [][]trace.Span
	for _, path := range strings.Split(pathsCSV, ",") {
		if path = strings.TrimSpace(path); path == "" {
			continue
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		spans, err := trace.ReadChromeTrace(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		captures = append(captures, spans)
	}
	if len(captures) == 0 {
		return fmt.Errorf("-traces: no files given")
	}
	spans := trace.MergeSpans(captures...)
	trace.WriteSlowestReport(out, spans, topK)
	if len(captures) > 1 {
		fmt.Fprintf(out, "stitched: %d cross-process transaction(s) across %d capture(s)\n",
			trace.StitchedTraces(spans), len(captures))
	}
	return nil
}

// renderCluster fetches the /debug/cluster snapshot from a metrics
// address (a bare host:port, or a full URL) and renders it as a
// terminal table; a non-zero watch interval redraws in place forever.
func renderCluster(out io.Writer, target string, watch time.Duration) error {
	if !strings.Contains(target, "://") {
		target = "http://" + target
	}
	if !strings.Contains(target, "/debug/cluster") {
		target = strings.TrimSuffix(target, "/") + "/debug/cluster"
	}
	fetch := func() (cluster.Snapshot, error) {
		var snap cluster.Snapshot
		resp, err := http.Get(target)
		if err != nil {
			return snap, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return snap, fmt.Errorf("%s answered %s", target, resp.Status)
		}
		err = json.NewDecoder(resp.Body).Decode(&snap)
		return snap, err
	}
	for {
		snap, err := fetch()
		if err != nil {
			return err
		}
		if watch > 0 {
			// Home the cursor and clear: a flicker-free redraw in place.
			fmt.Fprint(out, "\033[H\033[2J")
			fmt.Fprintf(out, "%s — every %v\n\n", target, watch)
		}
		cluster.WriteTable(out, snap)
		if watch <= 0 {
			return nil
		}
		time.Sleep(watch)
	}
}

// probeTxServer asks addr for transaction-server stats on a throwaway
// connection. A raw memory node rejects the opcode, which surfaces as
// an error here — the caller then falls back to the memory-node view.
func probeTxServer(addr string) (*wire.TxStats, bool) {
	cl, err := txclient.Dial(addr, txclient.WithConns(1))
	if err != nil {
		return nil, false
	}
	defer cl.Close()
	st, err := cl.ServerStats()
	if err != nil {
		return nil, false
	}
	return st, true
}

// renderTxServer prints a transaction front door's live state: who is
// connected, how deep the pipelines run, how well group commit is
// batching, and what admission control has pushed back on.
func renderTxServer(out io.Writer, server string, st *wire.TxStats) {
	fmt.Fprintf(out, "tx server %s: %d live conns (%d accepted, %d rejected at the door)\n",
		server, st.Conns, st.ConnsTotal, st.ConnsRejected)
	fmt.Fprintf(out, "transactions: %d begun, %d committed, %d aborted, %d in flight\n",
		st.TxsBegun, st.TxsCommitted, st.TxsAborted, st.TxsInFlight)
	fmt.Fprintf(out, "group commit: %d convoys over %d commits, batch p50/p99/max %d/%d/%d\n",
		st.Convoys, st.ConvoyCommits, st.BatchP50, st.BatchP99, st.BatchMax)
	fmt.Fprintf(out, "pipelining: per-conn depth p50/p99/max %d/%d/%d\n",
		st.DepthP50, st.DepthP99, st.DepthMax)
	fmt.Fprintf(out, "admission: %d busy rejections, %d malformed frames\n",
		st.BusyRejected, st.MalformedFrames)
}

// renderNode prints one server's counters and segment table, including
// how often each lifecycle operation ran and how many client references
// each segment currently holds.
func renderNode(out io.Writer, server string, stats wire.ServerStats, segs []wire.SegmentInfo) {
	fmt.Fprintf(out, "node %s: %d segments, %d bytes exported\n", server, stats.Segments, stats.BytesHeld)
	fmt.Fprintf(out, "traffic: %d writes (%d bytes), %d reads (%d bytes), %d batched exchanges\n",
		stats.WriteOps, stats.BytesWritten, stats.ReadOps, stats.BytesRead, stats.BatchOps)
	fmt.Fprintf(out, "lifecycle: %d mallocs, %d frees, %d connects, %d disconnects\n",
		stats.Mallocs, stats.Frees, stats.Connects, stats.Disconnects)
	if len(segs) > 0 {
		w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "ID\tSIZE\tCONNS\tNAME")
		for _, s := range segs {
			name := s.Name
			if name == "" {
				name = "(anonymous)"
			}
			fmt.Fprintf(w, "%d\t%d\t%d\t%s\n", s.ID, s.Size, s.Conns, name)
		}
		w.Flush()
	}
}

// renderMirrors dials every node of a mirror set, runs one pass of the
// guardian failure detector over the reachable ones, and renders one
// health row per node from its Status() API. Nodes that cannot even be
// dialed render as dead. Reports whether every mirror is healthy.
func renderMirrors(out io.Writer, addrsCSV string) (bool, error) {
	var addrs []string
	for _, a := range strings.Split(addrsCSV, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return false, fmt.Errorf("-mirrors: no addresses given")
	}

	// Dial what answers; remember what does not.
	type deadNode struct {
		addr string
		err  error
	}
	var ms []netram.Mirror
	slotAddr := make(map[int]string)
	var unreachable []deadNode
	for _, addr := range addrs {
		tr, err := transport.DialTCP(addr)
		if err != nil {
			unreachable = append(unreachable, deadNode{addr: addr, err: err})
			continue
		}
		defer tr.Close()
		slotAddr[len(ms)] = addr
		ms = append(ms, netram.Mirror{Name: addr, T: tr})
	}

	var rows []guardian.MirrorHealth
	p99 := make(map[int]time.Duration)
	pipeline := 1
	if len(ms) > 0 {
		client, err := netram.NewClient(ms)
		if err != nil {
			return false, err
		}
		pipeline = client.RebuildPipeline()
		clock := simclock.NewWall()
		// Misses=1: a single failed probe is enough for a one-shot
		// health snapshot.
		g, err := guardian.New(client, clock, guardian.Config{Misses: 1})
		if err != nil {
			return false, err
		}
		g.Poll()
		rows = g.Status()
		now := clock.Now()
		for i := range rows {
			rows[i].LastBeat = now - rows[i].LastBeat // age, for display
		}
		// ~32 timed probes per live node feed its per-mirror push
		// histogram, so the table can rank replicas by round-trip tail
		// latency — the straggler a parallel fan-out would wait on.
		m := client.Metrics()
		for slot := range ms {
			for k := 0; k < 32; k++ {
				t0 := time.Now()
				if err := client.ProbeMirror(slot); err != nil {
					break
				}
				m.MirrorPush[slot].ObserveDuration(time.Since(t0))
			}
			if snap := m.MirrorPush[slot].Snapshot(); snap.Count > 0 {
				p99[slot] = time.Duration(snap.Quantile(0.99))
			}
		}
	}
	for _, d := range unreachable {
		rows = append(rows, guardian.MirrorHealth{
			Slot: len(rows), Mirror: d.addr, State: guardian.Dead, LastError: d.err,
		})
	}

	fmt.Fprintln(out, "MIRRORS:")
	fmt.Fprintf(out, "rebuild pipeline: depth %d", pipeline)
	if pipeline <= 1 {
		fmt.Fprint(out, " (sequential bulk copy)")
	} else {
		fmt.Fprint(out, " (read-ahead, striped across survivors)")
	}
	fmt.Fprintln(out)
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "SLOT\tMIRROR\tSTATE\tLAST-BEAT\tRTT-P99\tCATCH-UP\tDEATHS\tREBUILT\tSRC-READS\tERROR")
	healthy := true
	for i, row := range rows {
		if row.State != guardian.Healthy {
			healthy = false
		}
		beat := "never"
		if row.LastError == nil || row.State == guardian.Healthy {
			beat = fmt.Sprintf("%s ago", row.LastBeat.Round(time.Millisecond))
		}
		errStr := "-"
		if row.LastError != nil {
			errStr = row.LastError.Error()
		}
		addr := row.Mirror
		if a, ok := slotAddr[row.Slot]; ok && row.Slot < len(ms) {
			addr = a
		}
		rtt := "-"
		if d, ok := p99[row.Slot]; ok && row.Slot < len(ms) {
			rtt = d.Round(time.Microsecond).String()
		}
		fmt.Fprintf(w, "%d\t%s\t%s\t%s\t%s\t%d\t%d\t%d B\t%d B\t%s\n",
			i, addr, row.State, beat, rtt, row.CatchUp, row.Deaths, row.RebuildBytes, row.SourceBytes, errStr)
	}
	w.Flush()
	if healthy {
		fmt.Fprintf(out, "health: all %d mirrors healthy\n", len(rows))
	} else {
		fmt.Fprintf(out, "health: DEGRADED — %d node(s) checked, not all healthy\n", len(rows))
	}
	return healthy, nil
}

// auditMirrors compares every named segment of a with its namesake on b,
// chunk by chunk, and describes each divergence.
func auditMirrors(a, b *transport.TCP, segs []wire.SegmentInfo) ([]string, error) {
	const chunk = 64 << 10
	var divergent []string
	for _, s := range segs {
		if s.Name == "" {
			continue // anonymous segments have no cross-node identity
		}
		hb, err := b.Connect(s.Name)
		if err != nil {
			divergent = append(divergent, fmt.Sprintf("%s: missing on peer (%v)", s.Name, err))
			continue
		}
		if hb.Size != s.Size {
			divergent = append(divergent,
				fmt.Sprintf("%s: size %d vs %d", s.Name, s.Size, hb.Size))
			continue
		}
		for off := uint64(0); off < s.Size; off += chunk {
			n := uint32(chunk)
			if rest := s.Size - off; rest < chunk {
				n = uint32(rest)
			}
			da, err := a.Read(s.ID, off, n)
			if err != nil {
				return nil, fmt.Errorf("read %s@%d from primary: %w", s.Name, off, err)
			}
			db, err := b.Read(hb.ID, off, n)
			if err != nil {
				return nil, fmt.Errorf("read %s@%d from peer: %w", s.Name, off, err)
			}
			if !bytes.Equal(da, db) {
				for i := range da {
					if da[i] != db[i] {
						divergent = append(divergent,
							fmt.Sprintf("%s: first difference at byte %d", s.Name, off+uint64(i)))
						break
					}
				}
				break
			}
		}
	}
	return divergent, nil
}
