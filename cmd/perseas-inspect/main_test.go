package main

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/ics-forth/perseas/internal/cluster"
	"github.com/ics-forth/perseas/internal/core"
	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/trace"
	"github.com/ics-forth/perseas/internal/transport"
)

// startServer runs a memory server on loopback for tool tests.
func startServer(t *testing.T) (*memserver.Server, *transport.TCP) {
	t.Helper()
	srv := memserver.New()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = transport.Serve(l, srv) }()
	t.Cleanup(func() { l.Close() })
	cli, err := transport.DialTCP(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return srv, cli
}

func TestAuditMirrorsClean(t *testing.T) {
	srvA, cliA := startServer(t)
	srvB, cliB := startServer(t)
	for _, srv := range []*memserver.Server{srvA, srvB} {
		seg, err := srv.Malloc("db", 128<<10)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Write(seg.ID, 4096, []byte("identical")); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := cliA.List()
	if err != nil {
		t.Fatal(err)
	}
	divergent, err := auditMirrors(cliA, cliB, segs)
	if err != nil {
		t.Fatal(err)
	}
	if len(divergent) != 0 {
		t.Errorf("clean mirrors reported %v", divergent)
	}
}

func TestAuditMirrorsDivergence(t *testing.T) {
	srvA, cliA := startServer(t)
	srvB, cliB := startServer(t)
	segA, err := srvA.Malloc("db", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srvB.Malloc("db", 1024); err != nil {
		t.Fatal(err)
	}
	if err := srvA.Write(segA.ID, 700, []byte{0xAB}); err != nil {
		t.Fatal(err)
	}
	if _, err := srvA.Malloc("only-here", 64); err != nil {
		t.Fatal(err)
	}
	if _, err := srvB.Malloc("wrong-size", 64); err != nil {
		t.Fatal(err)
	}
	if _, err := srvA.Malloc("wrong-size", 128); err != nil {
		t.Fatal(err)
	}

	segs, err := cliA.List()
	if err != nil {
		t.Fatal(err)
	}
	divergent, err := auditMirrors(cliA, cliB, segs)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(divergent, "\n")
	for _, want := range []string{
		"db: first difference at byte 700",
		"only-here: missing on peer",
		"wrong-size: size 128 vs 64",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("audit missing %q in:\n%s", want, joined)
		}
	}
}

func TestRenderNode(t *testing.T) {
	srv, cli := startServer(t)
	seg, err := srv.Malloc("db", 2048)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Write(seg.ID, 0, []byte("xyz")); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Connect("db"); err != nil {
		t.Fatal(err)
	}
	stats, err := cli.Stats()
	if err != nil {
		t.Fatal(err)
	}
	segs, err := cli.List()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	renderNode(&sb, "test-node", stats, segs)
	out := sb.String()
	for _, want := range []string{
		"node test-node: 1 segments, 2048 bytes exported",
		"1 mallocs",
		"1 connects",
		"CONNS",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// startListener runs a memory server on loopback and returns its
// address (no client side).
func startListener(t *testing.T) string {
	t.Helper()
	srv := memserver.New()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = transport.Serve(l, srv) }()
	t.Cleanup(func() { l.Close() })
	return l.Addr().String()
}

func TestRenderMirrorsAllHealthy(t *testing.T) {
	a, b := startListener(t), startListener(t)
	var sb strings.Builder
	healthy, err := renderMirrors(&sb, a+","+b)
	if err != nil {
		t.Fatal(err)
	}
	if !healthy {
		t.Fatalf("healthy=false for live mirrors:\n%s", sb.String())
	}
	out := sb.String()
	for _, want := range []string{"MIRRORS:", "SLOT", a, b, "healthy", "all 2 mirrors healthy"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderMirrorsUnreachableNode(t *testing.T) {
	a := startListener(t)
	// An address nothing listens on: reserve a port, then free it.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := l.Addr().String()
	l.Close()

	var sb strings.Builder
	healthy, err := renderMirrors(&sb, a+","+deadAddr)
	if err != nil {
		t.Fatal(err)
	}
	if healthy {
		t.Fatalf("healthy=true with an unreachable node:\n%s", sb.String())
	}
	out := sb.String()
	for _, want := range []string{"MIRRORS:", a, deadAddr, "dead", "DEGRADED"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderMirrorsNoAddresses(t *testing.T) {
	var sb strings.Builder
	if _, err := renderMirrors(&sb, " , "); err == nil {
		t.Error("empty -mirrors accepted")
	}
}

// startShard boots one complete PERSEAS instance on nMirrors loopback
// servers and returns its mirror addresses plus the live library.
func startShard(t *testing.T, nMirrors int) ([]string, *core.Library, []net.Listener) {
	t.Helper()
	var addrs []string
	var mirrors []netram.Mirror
	var listeners []net.Listener
	for i := 0; i < nMirrors; i++ {
		srv := memserver.New()
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go func() { _ = transport.Serve(l, srv) }()
		t.Cleanup(func() { l.Close() })
		listeners = append(listeners, l)
		tr, err := transport.DialTCP(l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tr.Close() })
		addrs = append(addrs, l.Addr().String())
		mirrors = append(mirrors, netram.Mirror{Name: l.Addr().String(), T: tr})
	}
	ram, err := netram.NewClient(mirrors)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := core.Init(ram, simclock.NewWall())
	if err != nil {
		t.Fatal(err)
	}
	return addrs, lib, listeners
}

func TestRenderShardsHealthy(t *testing.T) {
	addrs0, lib0, _ := startShard(t, 2)
	addrs1, lib1, _ := startShard(t, 2)

	// Shard 0 carries two databases and one in-flight transaction (its
	// undo record is on the wire, its commit word is not): the table must
	// show it as conflict-table occupancy.
	for _, name := range []string{"users", "orders"} {
		if _, err := lib0.CreateDB(name, 8192); err != nil {
			t.Fatal(err)
		}
	}
	db, err := lib0.OpenDB("users")
	if err != nil {
		t.Fatal(err)
	}
	tx, err := lib0.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.SetRange(db, 0, 64); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tx.Abort() }()
	if _, err := lib1.CreateDB("inventory", 4096); err != nil {
		t.Fatal(err)
	}

	spec := strings.Join(addrs0, ",") + ";" + strings.Join(addrs1, ",")
	var sb strings.Builder
	healthy, err := renderShards(&sb, spec)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !healthy {
		t.Errorf("fully live deployment reported unhealthy:\n%s", out)
	}
	for _, want := range []string{
		"SHARDS:",
		"SHARD", "MIRRORS", "LIVE", "INFLIGHT",
		"2/2", "healthy",
		"health: all 2 shards healthy",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Shard 0: 2 databases, 1 in-flight transaction. Shard 1: 1 and 0.
	var rows [][]string
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) >= 9 && (f[0] == "0" || f[0] == "1") {
			rows = append(rows, f)
		}
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 shard rows, got %d:\n%s", len(rows), out)
	}
	if dbs, inflight := rows[0][6], rows[0][7]; dbs != "2" || inflight != "1" {
		t.Errorf("shard 0 row dbs=%s inflight=%s, want 2 and 1:\n%s", dbs, inflight, out)
	}
	if dbs, inflight := rows[1][6], rows[1][7]; dbs != "1" || inflight != "0" {
		t.Errorf("shard 1 row dbs=%s inflight=%s, want 1 and 0:\n%s", dbs, inflight, out)
	}
}

func TestRenderShardsDegraded(t *testing.T) {
	addrs0, _, listeners := startShard(t, 2)
	addrs1, _, _ := startShard(t, 2)
	listeners[1].Close()

	spec := strings.Join(addrs0, ",") + ";" + strings.Join(addrs1, ",")
	var sb strings.Builder
	healthy, err := renderShards(&sb, spec)
	if err != nil {
		t.Fatal(err)
	}
	if healthy {
		t.Errorf("shard with a dead mirror reported healthy:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "DEGRADED") {
		t.Errorf("output missing DEGRADED:\n%s", sb.String())
	}
}

func TestRenderShardsNoAddresses(t *testing.T) {
	var sb strings.Builder
	if _, err := renderShards(&sb, " ; , "); err == nil {
		t.Error("empty shard spec should fail")
	}
}

func TestRenderTraces(t *testing.T) {
	// Record a tiny transaction tree plus an infrastructure span, write
	// it as a trace-event file, and render it back.
	rec := trace.NewRecorder()
	rec.Enable()
	tt := rec.Tx()
	root := tt.Start(trace.LayerEngine, "tx")
	tt.Start(trace.LayerCore, "local_undo_copy").EndN(512)
	root.End()
	tt.Finish()
	rec.Start(trace.LayerTransport, "combine").EndN(3)

	path := filepath.Join(t.TempDir(), "run.trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteChromeTrace(f, rec.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := renderTraces(&sb, path, 5); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"slowest transactions", "tx", "local_undo_copy"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestRenderTracesMergesCaptures: a client capture and a server capture
// of the same transaction merge into one tree, and the report counts
// the stitched transaction.
func TestRenderTracesMergesCaptures(t *testing.T) {
	writeCapture := func(name string, rec *trace.Recorder) string {
		t.Helper()
		path := filepath.Join(t.TempDir(), name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteChromeTrace(f, rec.Snapshot()); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}

	cli := trace.NewRecorder()
	cli.SetProcess("client")
	cli.Enable()
	tt := cli.Tx()
	root := tt.Start(trace.LayerClient, "tx")
	rtt := tt.Start(trace.LayerClient, "commit_rtt")
	traceID, parent := tt.Trace(), rtt.ID()

	srv := trace.NewRecorder()
	srv.SetProcess("server")
	srv.Enable()
	srv.LinkedSpanFrom(trace.LayerServer, "serve_commit", traceID, parent).End()

	rtt.End()
	root.End()
	tt.Finish()

	var sb strings.Builder
	err := renderTraces(&sb,
		writeCapture("client.json", cli)+","+writeCapture("server.json", srv), 5)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "stitched: 1 cross-process transaction(s) across 2 capture(s)") {
		t.Errorf("report missing the stitched count:\n%s", out)
	}
	if !strings.Contains(out, "serve_commit") {
		t.Errorf("merged report missing the server span:\n%s", out)
	}
}

// TestRenderClusterOnce: the -cluster view fetches the snapshot over
// HTTP and renders the terminal table.
func TestRenderClusterOnce(t *testing.T) {
	snap := cluster.Snapshot{
		Shards: []cluster.ShardStatus{{Label: "shard0", Begun: 3, Committed: 2}},
		Flight: 4,
	}
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/cluster" {
			http.NotFound(w, r)
			return
		}
		_ = json.NewEncoder(w).Encode(snap)
	}))
	defer hs.Close()

	var sb strings.Builder
	// A bare host:port must grow the scheme and the /debug/cluster path.
	if err := renderCluster(&sb, strings.TrimPrefix(hs.URL, "http://"), 0); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"shard0", "flight events: 4"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("cluster view missing %q:\n%s", want, sb.String())
		}
	}
}

func TestRenderTracesRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := renderTraces(&sb, path, 5); err == nil {
		t.Error("garbage trace file accepted")
	}
}
