package main

import (
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/trace"
	"github.com/ics-forth/perseas/internal/transport"
)

// startServer runs a memory server on loopback for tool tests.
func startServer(t *testing.T) (*memserver.Server, *transport.TCP) {
	t.Helper()
	srv := memserver.New()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = transport.Serve(l, srv) }()
	t.Cleanup(func() { l.Close() })
	cli, err := transport.DialTCP(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return srv, cli
}

func TestAuditMirrorsClean(t *testing.T) {
	srvA, cliA := startServer(t)
	srvB, cliB := startServer(t)
	for _, srv := range []*memserver.Server{srvA, srvB} {
		seg, err := srv.Malloc("db", 128<<10)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Write(seg.ID, 4096, []byte("identical")); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := cliA.List()
	if err != nil {
		t.Fatal(err)
	}
	divergent, err := auditMirrors(cliA, cliB, segs)
	if err != nil {
		t.Fatal(err)
	}
	if len(divergent) != 0 {
		t.Errorf("clean mirrors reported %v", divergent)
	}
}

func TestAuditMirrorsDivergence(t *testing.T) {
	srvA, cliA := startServer(t)
	srvB, cliB := startServer(t)
	segA, err := srvA.Malloc("db", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srvB.Malloc("db", 1024); err != nil {
		t.Fatal(err)
	}
	if err := srvA.Write(segA.ID, 700, []byte{0xAB}); err != nil {
		t.Fatal(err)
	}
	if _, err := srvA.Malloc("only-here", 64); err != nil {
		t.Fatal(err)
	}
	if _, err := srvB.Malloc("wrong-size", 64); err != nil {
		t.Fatal(err)
	}
	if _, err := srvA.Malloc("wrong-size", 128); err != nil {
		t.Fatal(err)
	}

	segs, err := cliA.List()
	if err != nil {
		t.Fatal(err)
	}
	divergent, err := auditMirrors(cliA, cliB, segs)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(divergent, "\n")
	for _, want := range []string{
		"db: first difference at byte 700",
		"only-here: missing on peer",
		"wrong-size: size 128 vs 64",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("audit missing %q in:\n%s", want, joined)
		}
	}
}

func TestRenderNode(t *testing.T) {
	srv, cli := startServer(t)
	seg, err := srv.Malloc("db", 2048)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Write(seg.ID, 0, []byte("xyz")); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Connect("db"); err != nil {
		t.Fatal(err)
	}
	stats, err := cli.Stats()
	if err != nil {
		t.Fatal(err)
	}
	segs, err := cli.List()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	renderNode(&sb, "test-node", stats, segs)
	out := sb.String()
	for _, want := range []string{
		"node test-node: 1 segments, 2048 bytes exported",
		"1 mallocs",
		"1 connects",
		"CONNS",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// startListener runs a memory server on loopback and returns its
// address (no client side).
func startListener(t *testing.T) string {
	t.Helper()
	srv := memserver.New()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = transport.Serve(l, srv) }()
	t.Cleanup(func() { l.Close() })
	return l.Addr().String()
}

func TestRenderMirrorsAllHealthy(t *testing.T) {
	a, b := startListener(t), startListener(t)
	var sb strings.Builder
	healthy, err := renderMirrors(&sb, a+","+b)
	if err != nil {
		t.Fatal(err)
	}
	if !healthy {
		t.Fatalf("healthy=false for live mirrors:\n%s", sb.String())
	}
	out := sb.String()
	for _, want := range []string{"MIRRORS:", "SLOT", a, b, "healthy", "all 2 mirrors healthy"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderMirrorsUnreachableNode(t *testing.T) {
	a := startListener(t)
	// An address nothing listens on: reserve a port, then free it.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := l.Addr().String()
	l.Close()

	var sb strings.Builder
	healthy, err := renderMirrors(&sb, a+","+deadAddr)
	if err != nil {
		t.Fatal(err)
	}
	if healthy {
		t.Fatalf("healthy=true with an unreachable node:\n%s", sb.String())
	}
	out := sb.String()
	for _, want := range []string{"MIRRORS:", a, deadAddr, "dead", "DEGRADED"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderMirrorsNoAddresses(t *testing.T) {
	var sb strings.Builder
	if _, err := renderMirrors(&sb, " , "); err == nil {
		t.Error("empty -mirrors accepted")
	}
}

func TestRenderTraces(t *testing.T) {
	// Record a tiny transaction tree plus an infrastructure span, write
	// it as a trace-event file, and render it back.
	rec := trace.NewRecorder()
	rec.Enable()
	tt := rec.Tx()
	root := tt.Start(trace.LayerEngine, "tx")
	tt.Start(trace.LayerCore, "local_undo_copy").EndN(512)
	root.End()
	tt.Finish()
	rec.Start(trace.LayerTransport, "combine").EndN(3)

	path := filepath.Join(t.TempDir(), "run.trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteChromeTrace(f, rec.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := renderTraces(&sb, path, 5); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"slowest transactions", "tx", "local_undo_copy"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRenderTracesRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := renderTraces(&sb, path, 5); err == nil {
		t.Error("garbage trace file accepted")
	}
}
