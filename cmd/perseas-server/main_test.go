package main

import "testing"

func TestParseSize(t *testing.T) {
	tests := []struct {
		in   string
		want uint64
		ok   bool
	}{
		{"0", 0, true},
		{"4096", 4096, true},
		{"64KiB", 64 << 10, true},
		{"256MiB", 256 << 20, true},
		{"1GiB", 1 << 30, true},
		{"2KB", 2000, true},
		{"3MB", 3_000_000, true},
		{"1GB", 1_000_000_000, true},
		{" 8MiB ", 8 << 20, true},
		{"", 0, false},
		{"abc", 0, false},
		{"12XB", 0, false},
		{"-5", 0, false},
	}
	for _, tt := range tests {
		got, err := parseSize(tt.in)
		if tt.ok && (err != nil || got != tt.want) {
			t.Errorf("parseSize(%q) = %d, %v; want %d", tt.in, got, err, tt.want)
		}
		if !tt.ok && err == nil {
			t.Errorf("parseSize(%q) should fail", tt.in)
		}
	}
}
