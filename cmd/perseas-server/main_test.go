package main

import (
	"strings"
	"testing"

	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/obs"
	"github.com/ics-forth/perseas/internal/transport"
)

func TestRegisterServerMetrics(t *testing.T) {
	srv := memserver.New()
	seg, err := srv.Malloc("db", 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Write(seg.ID, 0, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	registerServerMetrics(reg, srv)

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"perseas_server_bytes_held 4096",
		"perseas_server_segments 1",
		"perseas_server_mallocs_total 1",
		"perseas_server_write_ops_total 1",
		"perseas_server_bytes_written_total 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}
}

func TestParseSize(t *testing.T) {
	tests := []struct {
		in   string
		want uint64
		ok   bool
	}{
		{"0", 0, true},
		{"4096", 4096, true},
		{"64KiB", 64 << 10, true},
		{"256MiB", 256 << 20, true},
		{"1GiB", 1 << 30, true},
		{"2KB", 2000, true},
		{"3MB", 3_000_000, true},
		{"1GB", 1_000_000_000, true},
		{" 8MiB ", 8 << 20, true},
		{"", 0, false},
		{"abc", 0, false},
		{"12XB", 0, false},
		{"-5", 0, false},
	}
	for _, tt := range tests {
		got, err := parseSize(tt.in)
		if tt.ok && (err != nil || got != tt.want) {
			t.Errorf("parseSize(%q) = %d, %v; want %d", tt.in, got, err, tt.want)
		}
		if !tt.ok && err == nil {
			t.Errorf("parseSize(%q) should fail", tt.in)
		}
	}
}

func TestSpawnSpares(t *testing.T) {
	ls, err := spawnSpares("127.0.0.1:0, 127.0.0.1:0", "nodeA", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, l := range ls {
			l.Close()
		}
	}()
	if len(ls) != 2 {
		t.Fatalf("spawned %d spares, want 2", len(ls))
	}
	// Each spare is a working standby node: dial it, probe it, export
	// on it.
	for i, l := range ls {
		tr, err := transport.DialTCP(l.Addr().String())
		if err != nil {
			t.Fatalf("dial spare %d: %v", i, err)
		}
		if err := tr.Ping(); err != nil {
			t.Fatalf("ping spare %d: %v", i, err)
		}
		h, err := tr.Malloc("probe-seg", 64)
		if err != nil {
			t.Fatalf("malloc on spare %d: %v", i, err)
		}
		if err := tr.Free(h.ID); err != nil {
			t.Fatalf("free on spare %d: %v", i, err)
		}
		tr.Close()
	}
	// Over-capacity allocations are refused like on the primary.
	tr, err := transport.DialTCP(ls[0].Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := tr.Malloc("too-big", 2<<20); err == nil {
		t.Fatal("spare accepted an over-capacity segment")
	}
}

func TestSpawnSparesEmpty(t *testing.T) {
	ls, err := spawnSpares("", "nodeA", 0)
	if err != nil || len(ls) != 0 {
		t.Fatalf("empty -spares: %v %d", err, len(ls))
	}
}

func TestDefaultLabel(t *testing.T) {
	if got := defaultLabel(":7070", -1); got != ":7070" {
		t.Errorf("unsharded label = %q, want :7070", got)
	}
	if got := defaultLabel(":7070", 2); got != "shard2-:7070" {
		t.Errorf("sharded label = %q, want shard2-:7070", got)
	}
}
