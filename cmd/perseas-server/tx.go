// The -tx mode: instead of exporting raw memory, the process runs a
// whole PERSEAS installation — mirrors, engine, optionally a shard
// router and a guardian — and serves the transaction API itself on
// -listen through internal/txserver. Client processes link only the
// thin txclient library (or speak the wire protocol directly) and get
// Begin/SetRange/Commit/Abort against this node.
//
//	perseas-server -tx -listen :7080                  # 2 loopback mirrors
//	perseas-server -tx -shards 4 -listen :7080        # sharded namespace
//	perseas-server -tx -servers h1:7070,h2:7070       # real remote mirrors
//	perseas-server -tx -spares :7071 -listen :7080    # guardian + spare node
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/ics-forth/perseas/internal/cluster"
	"github.com/ics-forth/perseas/internal/core"
	"github.com/ics-forth/perseas/internal/debugmux"
	"github.com/ics-forth/perseas/internal/engine"
	"github.com/ics-forth/perseas/internal/flight"
	"github.com/ics-forth/perseas/internal/guardian"
	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/obs"
	"github.com/ics-forth/perseas/internal/router"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/trace"
	"github.com/ics-forth/perseas/internal/transport"
	"github.com/ics-forth/perseas/internal/txserver"
)

// txConfig carries the -tx mode flags.
type txConfig struct {
	listen      string
	servers     string // external mirror addresses; empty = loopback mirrors
	mirrors     int    // loopback mirrors per shard when servers is empty
	shards      int
	spares      string // listen addresses for spare nodes under a guardian
	quorum      int
	commitMode  string
	maxConns    int
	maxInFlight int
	maxTxs      int
	faultOps    bool
	metricsAddr string
	// traceOut enables server-side span capture and writes it as
	// Chrome trace-event JSON on shutdown; merged with a client-side
	// capture it yields one stitched tree per remote transaction.
	traceOut string
	// eventsOut writes the anomaly flight recorder as JSON on
	// shutdown (the live view serves at /debug/events regardless).
	eventsOut string
	// pprofBlock/pprofMutex enable blocking and mutex-contention
	// profiles on the metrics mux at the given sampling rates.
	pprofBlock int
	pprofMutex int
}

// shardRig is one shard's substrate: its netram client and the local
// mirror listeners to tear down on exit.
type shardRig struct {
	ram       *netram.Client
	lib       *core.Library
	listeners []net.Listener
}

// runTx builds the installation and serves the transaction API until a
// signal arrives.
func runTx(cfg txConfig) error {
	if cfg.shards < 1 {
		cfg.shards = 1
	}
	if cfg.servers != "" && cfg.shards > 1 {
		return fmt.Errorf("-servers composes with a single shard (dial one mirror set); use loopback mirrors for -shards > 1")
	}

	// The span recorder exists unconditionally but records only when
	// -tx-trace-out asks for a capture; the flight recorder is always
	// on — anomalies are rare and each costs nanoseconds to record.
	rec := trace.NewRecorder()
	rec.SetProcess("server")
	if cfg.traceOut != "" {
		rec.Enable()
	}
	fr := flight.New(0)
	fr.Enable()
	clock := simclock.NewWall()
	rec.SetClock(clock)
	fr.SetClock(clock)

	var rigs []*shardRig
	var closers []net.Listener
	defer func() {
		for _, l := range closers {
			l.Close()
		}
	}()
	for s := 0; s < cfg.shards; s++ {
		rig, err := buildShardRig(cfg, s, clock, rec, fr)
		if err != nil {
			return err
		}
		rigs = append(rigs, rig)
		closers = append(closers, rig.listeners...)
	}

	var eng engine.Engine
	if cfg.shards > 1 {
		libs := make([]*core.Library, len(rigs))
		for i, r := range rigs {
			libs[i] = r.lib
		}
		r, err := router.New(libs)
		if err != nil {
			return err
		}
		r.SetFlight(fr)
		eng = r
		log.Printf("perseas-server: transaction namespace sharded %d ways", cfg.shards)
	} else {
		eng = rigs[0].lib
	}

	// The spare pool and its guardian: spares are extra loopback memory
	// nodes on the given addresses, distributed round-robin over the
	// shards' mirror sets.
	byShard, spareLs, err := spawnTxGuardians(cfg, rigs, rec, fr)
	if err != nil {
		return err
	}
	closers = append(closers, spareLs...)
	var guards []*guardian.Guardian
	for _, g := range byShard {
		if g != nil {
			guards = append(guards, g)
			defer g.Stop()
		}
	}

	var opts []txserver.Option
	switch cfg.commitMode {
	case "", "group":
	case "serial":
		opts = append(opts, txserver.WithCommitMode(txserver.SerialCommit))
	default:
		return fmt.Errorf("bad -tx-commit %q (want group or serial)", cfg.commitMode)
	}
	if cfg.maxConns > 0 {
		opts = append(opts, txserver.WithMaxConns(cfg.maxConns))
	}
	if cfg.maxInFlight > 0 {
		opts = append(opts, txserver.WithMaxInFlight(cfg.maxInFlight))
	}
	if cfg.maxTxs > 0 {
		opts = append(opts, txserver.WithMaxTxs(cfg.maxTxs))
	}
	if cfg.faultOps {
		opts = append(opts, txserver.WithFaultInjection())
		log.Printf("perseas-server: WARNING: fault injection ops enabled (-tx-fault-ops)")
	}
	opts = append(opts, txserver.WithTracer(rec), txserver.WithFlightRecorder(fr))
	srv := txserver.New(eng, opts...)

	// The cluster snapshot aggregates every shard regardless of whether
	// a metrics listener runs; the shutdown log reuses it.
	clusterCfg := &cluster.Config{Server: srv, Flight: fr, Clock: clock}
	for i, r := range rigs {
		label := "perseas"
		if cfg.shards > 1 {
			label = fmt.Sprintf("shard%d", i)
		}
		clusterCfg.Shards = append(clusterCfg.Shards, cluster.ShardSource{
			Label: label, Lib: r.lib, Net: r.ram, Guard: byShard[i],
		})
	}

	if cfg.metricsAddr != "" {
		reg := obs.NewRegistry()
		srv.RegisterMetrics(reg)
		rigs[0].lib.RegisterMetrics(reg)
		rec.RegisterMetrics(reg)
		fr.RegisterMetrics(reg)
		for _, g := range guards {
			g.RegisterMetrics(reg)
		}
		ml, err := net.Listen("tcp", cfg.metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		closers = append(closers, ml)
		mux := debugmux.Build(debugmux.Config{
			Registry:             reg,
			Tracer:               rec,
			Flight:               fr,
			Cluster:              clusterCfg,
			BlockProfileRate:     cfg.pprofBlock,
			MutexProfileFraction: cfg.pprofMutex,
		})
		go func() { _ = (&http.Server{Handler: mux}).Serve(ml) }()
		log.Printf("perseas-server: metrics on http://%s/metrics (debug: /debug/traces /debug/events /debug/cluster /debug/pprof)", ml.Addr())
	}

	l, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return err
	}
	log.Printf("perseas-server: transaction front door on %s (%s commit, %d shard(s), engine %s)",
		l.Addr(), srv.Mode(), cfg.shards, eng.Name())

	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		st := srv.Stats()
		log.Printf("perseas-server: %v — shutting down (%d conns, %d txs committed, %d convoys)",
			s, st.Conns, st.TxsCommitted, st.Convoys)
		l.Close()
		<-done
		if cfg.traceOut != "" {
			if err := writeTraceFile(cfg.traceOut, rec); err != nil {
				log.Printf("perseas-server: trace dump: %v", err)
			} else {
				log.Printf("perseas-server: wrote server-side trace to %s", cfg.traceOut)
			}
		}
		if err := dumpFlight(cfg.eventsOut, fr); err != nil {
			log.Printf("perseas-server: flight dump: %v", err)
		}
		return nil
	case err := <-done:
		return err
	}
}

// writeTraceFile dumps the recorder's spans as Chrome trace-event
// JSON.
func writeTraceFile(path string, rec *trace.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChromeTrace(f, rec.Snapshot()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// dumpFlight writes the anomaly ring to path, or logs a summary line
// when no path was given — the post-mortem matters most exactly when
// nobody thought to configure it.
func dumpFlight(path string, fr *flight.Recorder) error {
	if path == "" {
		if n := fr.Total(); n > 0 {
			log.Printf("perseas-server: flight recorder captured %d anomalies (%d dropped); rerun with -tx-events-out to keep them", n, fr.Dropped())
		}
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fr.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	log.Printf("perseas-server: wrote %d flight events to %s", fr.Total(), path)
	return nil
}

// buildShardRig wires one shard's mirror set and engine. With
// cfg.servers it dials running perseas-server memory nodes; otherwise
// it spawns loopback TCP mirrors in-process — still real sockets, so
// the transport write combiner and the group-commit convoy above it
// behave as they would across machines.
func buildShardRig(cfg txConfig, shard int, clock simclock.Clock, rec *trace.Recorder, fr *flight.Recorder) (*shardRig, error) {
	rig := &shardRig{}
	var addrs []string
	if cfg.servers != "" {
		for _, a := range strings.Split(cfg.servers, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		if len(addrs) == 0 {
			return nil, fmt.Errorf("-servers: no mirror addresses")
		}
	} else {
		n := cfg.mirrors
		if n < 1 {
			n = 2
		}
		for i := 0; i < n; i++ {
			srv := memserver.New(memserver.WithLabel(fmt.Sprintf("shard%d-mirror-%d", shard, i)))
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return nil, err
			}
			go func() { _ = transport.Serve(l, srv) }()
			rig.listeners = append(rig.listeners, l)
			addrs = append(addrs, l.Addr().String())
		}
	}
	var mirrors []netram.Mirror
	for _, addr := range addrs {
		tr, err := transport.DialTCP(addr)
		if err != nil {
			return nil, fmt.Errorf("dial mirror %s: %w", addr, err)
		}
		mirrors = append(mirrors, netram.Mirror{Name: addr, T: tr})
	}
	var nopts []netram.Option
	if cfg.quorum > 0 {
		nopts = append(nopts, netram.WithQuorum(cfg.quorum))
	}
	ram, err := netram.NewClient(mirrors, nopts...)
	if err != nil {
		return nil, err
	}
	ram.SetTracer(rec)
	ram.SetFlight(fr)
	lib, err := core.Init(ram, clock, core.WithTracer(rec))
	if err != nil {
		return nil, err
	}
	rig.ram = ram
	rig.lib = lib
	log.Printf("perseas-server: shard %d mirrors: %s", shard, strings.Join(addrs, ", "))
	return rig, nil
}

// spawnTxGuardians provisions spare memory nodes on the -spares
// addresses and starts a guardian per shard that received one, so a
// dead mirror is rebuilt onto a spare while the front door keeps
// serving.
func spawnTxGuardians(cfg txConfig, rigs []*shardRig, rec *trace.Recorder, fr *flight.Recorder) ([]*guardian.Guardian, []net.Listener, error) {
	byShard := make([]*guardian.Guardian, len(rigs))
	var addrs []string
	for _, a := range strings.Split(cfg.spares, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return byShard, nil, nil
	}
	perShard := make([][]netram.Mirror, len(rigs))
	var ls []net.Listener
	for k, addr := range addrs {
		srv := memserver.New(memserver.WithLabel(fmt.Sprintf("spare-%d", k)))
		sl, err := net.Listen("tcp", addr)
		if err != nil {
			return nil, ls, fmt.Errorf("spare listener %s: %w", addr, err)
		}
		go func() { _ = transport.Serve(sl, srv) }()
		ls = append(ls, sl)
		tr, err := transport.DialTCP(sl.Addr().String())
		if err != nil {
			return nil, ls, fmt.Errorf("dial spare %s: %w", sl.Addr(), err)
		}
		s := k % len(rigs)
		perShard[s] = append(perShard[s], netram.Mirror{Name: "spare " + sl.Addr().String(), T: tr})
		log.Printf("perseas-server: spare node on %s (shard %d pool)", sl.Addr(), s)
	}
	for s, spares := range perShard {
		if len(spares) == 0 {
			continue
		}
		g, err := guardian.New(rigs[s].ram, simclock.NewWall(), guardian.Config{
			Interval: 50 * time.Millisecond,
			Misses:   3,
			Spares:   spares,
			OnEvent: func(ev guardian.Event) {
				log.Printf("perseas-server: GUARDIAN: mirror %s: %s -> %s", ev.Mirror, ev.From, ev.To)
			},
		})
		if err != nil {
			return byShard, ls, err
		}
		g.SetTracer(rec)
		g.SetFlight(fr)
		if err := g.Start(); err != nil {
			return byShard, ls, err
		}
		byShard[s] = g
	}
	return byShard, ls, nil
}
