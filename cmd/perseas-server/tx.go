// The -tx mode: instead of exporting raw memory, the process runs a
// whole PERSEAS installation — mirrors, engine, optionally a shard
// router and a guardian — and serves the transaction API itself on
// -listen through internal/txserver. Client processes link only the
// thin txclient library (or speak the wire protocol directly) and get
// Begin/SetRange/Commit/Abort against this node.
//
//	perseas-server -tx -listen :7080                  # 2 loopback mirrors
//	perseas-server -tx -shards 4 -listen :7080        # sharded namespace
//	perseas-server -tx -servers h1:7070,h2:7070       # real remote mirrors
//	perseas-server -tx -spares :7071 -listen :7080    # guardian + spare node
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/ics-forth/perseas/internal/core"
	"github.com/ics-forth/perseas/internal/engine"
	"github.com/ics-forth/perseas/internal/guardian"
	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/obs"
	"github.com/ics-forth/perseas/internal/router"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/transport"
	"github.com/ics-forth/perseas/internal/txserver"
)

// txConfig carries the -tx mode flags.
type txConfig struct {
	listen      string
	servers     string // external mirror addresses; empty = loopback mirrors
	mirrors     int    // loopback mirrors per shard when servers is empty
	shards      int
	spares      string // listen addresses for spare nodes under a guardian
	quorum      int
	commitMode  string
	maxConns    int
	maxInFlight int
	maxTxs      int
	faultOps    bool
	metricsAddr string
}

// shardRig is one shard's substrate: its netram client and the local
// mirror listeners to tear down on exit.
type shardRig struct {
	ram       *netram.Client
	lib       *core.Library
	listeners []net.Listener
}

// runTx builds the installation and serves the transaction API until a
// signal arrives.
func runTx(cfg txConfig) error {
	if cfg.shards < 1 {
		cfg.shards = 1
	}
	if cfg.servers != "" && cfg.shards > 1 {
		return fmt.Errorf("-servers composes with a single shard (dial one mirror set); use loopback mirrors for -shards > 1")
	}

	var rigs []*shardRig
	var closers []net.Listener
	defer func() {
		for _, l := range closers {
			l.Close()
		}
	}()
	for s := 0; s < cfg.shards; s++ {
		rig, err := buildShardRig(cfg, s)
		if err != nil {
			return err
		}
		rigs = append(rigs, rig)
		closers = append(closers, rig.listeners...)
	}

	var eng engine.Engine
	if cfg.shards > 1 {
		libs := make([]*core.Library, len(rigs))
		for i, r := range rigs {
			libs[i] = r.lib
		}
		r, err := router.New(libs)
		if err != nil {
			return err
		}
		eng = r
		log.Printf("perseas-server: transaction namespace sharded %d ways", cfg.shards)
	} else {
		eng = rigs[0].lib
	}

	// The spare pool and its guardian: spares are extra loopback memory
	// nodes on the given addresses, distributed round-robin over the
	// shards' mirror sets.
	guards, spareLs, err := spawnTxGuardians(cfg, rigs)
	if err != nil {
		return err
	}
	closers = append(closers, spareLs...)
	for _, g := range guards {
		defer g.Stop()
	}

	var opts []txserver.Option
	switch cfg.commitMode {
	case "", "group":
	case "serial":
		opts = append(opts, txserver.WithCommitMode(txserver.SerialCommit))
	default:
		return fmt.Errorf("bad -tx-commit %q (want group or serial)", cfg.commitMode)
	}
	if cfg.maxConns > 0 {
		opts = append(opts, txserver.WithMaxConns(cfg.maxConns))
	}
	if cfg.maxInFlight > 0 {
		opts = append(opts, txserver.WithMaxInFlight(cfg.maxInFlight))
	}
	if cfg.maxTxs > 0 {
		opts = append(opts, txserver.WithMaxTxs(cfg.maxTxs))
	}
	if cfg.faultOps {
		opts = append(opts, txserver.WithFaultInjection())
		log.Printf("perseas-server: WARNING: fault injection ops enabled (-tx-fault-ops)")
	}
	srv := txserver.New(eng, opts...)

	if cfg.metricsAddr != "" {
		reg := obs.NewRegistry()
		srv.RegisterMetrics(reg)
		rigs[0].lib.RegisterMetrics(reg)
		for _, g := range guards {
			g.RegisterMetrics(reg)
		}
		ml, err := net.Listen("tcp", cfg.metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		closers = append(closers, ml)
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg)
		go func() { _ = (&http.Server{Handler: mux}).Serve(ml) }()
		log.Printf("perseas-server: metrics on http://%s/metrics", ml.Addr())
	}

	l, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return err
	}
	log.Printf("perseas-server: transaction front door on %s (%s commit, %d shard(s), engine %s)",
		l.Addr(), srv.Mode(), cfg.shards, eng.Name())

	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		st := srv.Stats()
		log.Printf("perseas-server: %v — shutting down (%d conns, %d txs committed, %d convoys)",
			s, st.Conns, st.TxsCommitted, st.Convoys)
		l.Close()
		<-done
		return nil
	case err := <-done:
		return err
	}
}

// buildShardRig wires one shard's mirror set and engine. With
// cfg.servers it dials running perseas-server memory nodes; otherwise
// it spawns loopback TCP mirrors in-process — still real sockets, so
// the transport write combiner and the group-commit convoy above it
// behave as they would across machines.
func buildShardRig(cfg txConfig, shard int) (*shardRig, error) {
	rig := &shardRig{}
	var addrs []string
	if cfg.servers != "" {
		for _, a := range strings.Split(cfg.servers, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		if len(addrs) == 0 {
			return nil, fmt.Errorf("-servers: no mirror addresses")
		}
	} else {
		n := cfg.mirrors
		if n < 1 {
			n = 2
		}
		for i := 0; i < n; i++ {
			srv := memserver.New(memserver.WithLabel(fmt.Sprintf("shard%d-mirror-%d", shard, i)))
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return nil, err
			}
			go func() { _ = transport.Serve(l, srv) }()
			rig.listeners = append(rig.listeners, l)
			addrs = append(addrs, l.Addr().String())
		}
	}
	var mirrors []netram.Mirror
	for _, addr := range addrs {
		tr, err := transport.DialTCP(addr)
		if err != nil {
			return nil, fmt.Errorf("dial mirror %s: %w", addr, err)
		}
		mirrors = append(mirrors, netram.Mirror{Name: addr, T: tr})
	}
	var nopts []netram.Option
	if cfg.quorum > 0 {
		nopts = append(nopts, netram.WithQuorum(cfg.quorum))
	}
	ram, err := netram.NewClient(mirrors, nopts...)
	if err != nil {
		return nil, err
	}
	lib, err := core.Init(ram, simclock.NewWall())
	if err != nil {
		return nil, err
	}
	rig.ram = ram
	rig.lib = lib
	log.Printf("perseas-server: shard %d mirrors: %s", shard, strings.Join(addrs, ", "))
	return rig, nil
}

// spawnTxGuardians provisions spare memory nodes on the -spares
// addresses and starts a guardian per shard that received one, so a
// dead mirror is rebuilt onto a spare while the front door keeps
// serving.
func spawnTxGuardians(cfg txConfig, rigs []*shardRig) ([]*guardian.Guardian, []net.Listener, error) {
	var addrs []string
	for _, a := range strings.Split(cfg.spares, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return nil, nil, nil
	}
	perShard := make([][]netram.Mirror, len(rigs))
	var ls []net.Listener
	for k, addr := range addrs {
		srv := memserver.New(memserver.WithLabel(fmt.Sprintf("spare-%d", k)))
		sl, err := net.Listen("tcp", addr)
		if err != nil {
			return nil, ls, fmt.Errorf("spare listener %s: %w", addr, err)
		}
		go func() { _ = transport.Serve(sl, srv) }()
		ls = append(ls, sl)
		tr, err := transport.DialTCP(sl.Addr().String())
		if err != nil {
			return nil, ls, fmt.Errorf("dial spare %s: %w", sl.Addr(), err)
		}
		s := k % len(rigs)
		perShard[s] = append(perShard[s], netram.Mirror{Name: "spare " + sl.Addr().String(), T: tr})
		log.Printf("perseas-server: spare node on %s (shard %d pool)", sl.Addr(), s)
	}
	var guards []*guardian.Guardian
	for s, spares := range perShard {
		if len(spares) == 0 {
			continue
		}
		g, err := guardian.New(rigs[s].ram, simclock.NewWall(), guardian.Config{
			Interval: 50 * time.Millisecond,
			Misses:   3,
			Spares:   spares,
			OnEvent: func(ev guardian.Event) {
				log.Printf("perseas-server: GUARDIAN: mirror %s: %s -> %s", ev.Mirror, ev.From, ev.To)
			},
		})
		if err != nil {
			return guards, ls, err
		}
		if err := g.Start(); err != nil {
			return guards, ls, err
		}
		guards = append(guards, g)
	}
	return guards, ls, nil
}
