// Command perseas-server runs a remote-memory server: the process that
// exports a workstation's idle main memory to PERSEAS clients over the
// network, accepting remote malloc/free requests and applying remote
// memory copies (the paper's client-server model of Section 4).
//
//	perseas-server -listen :7070 -capacity 256MiB
//
// The server holds every exported segment in its heap; clients that
// crash can reconnect to their named segments and recover.
//
// With -spares, the process additionally exports standby memory nodes
// on extra addresses — the spare pool a guardian promotes from when a
// mirror dies:
//
//	perseas-server -listen :7070 -spares :7071,:7072
//
// With -shard, the node declares which shard of a partitioned
// deployment it mirrors: the index is stamped into the default label
// (shard2-:7070), the spare labels and the metrics, so a fleet of
// servers racked for perseas-stress -shards or the router reads back
// its own topology from diagnostics:
//
//	perseas-server -listen :7070 -shard 2
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/obs"
	"github.com/ics-forth/perseas/internal/transport"
)

func main() {
	listen := flag.String("listen", ":7070", "address to listen on")
	capacity := flag.String("capacity", "0", "exported-memory budget (e.g. 64MiB; 0 = unlimited)")
	label := flag.String("label", "", "node label used in diagnostics (default: listen address)")
	spares := flag.String("spares", "", "comma-separated extra listen addresses exporting standby spare nodes")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus metrics on this address (e.g. :9090)")
	shard := flag.Int("shard", -1, "shard index this node mirrors in a partitioned deployment (-1 = unsharded)")
	tx := flag.Bool("tx", false, "serve the transaction API (a full engine behind a front door) instead of raw memory")
	txServers := flag.String("servers", "", "-tx: comma-separated remote memory-server addresses to use as mirrors (default: loopback mirrors)")
	txMirrors := flag.Int("tx-mirrors", 2, "-tx: loopback mirror nodes per shard when -servers is empty")
	txShards := flag.Int("shards", 1, "-tx: shard the transaction namespace this many ways")
	txQuorum := flag.Int("quorum", 0, "-tx: commit quorum (0 = all mirrors must ack)")
	txCommit := flag.String("tx-commit", "group", "-tx: commit policy: group (cross-client group commit) or serial")
	txMaxConns := flag.Int("tx-max-conns", 0, "-tx: connection limit (0 = default)")
	txMaxInFlight := flag.Int("tx-max-inflight", 0, "-tx: per-connection pipelined request limit (0 = default)")
	txMaxTxs := flag.Int("tx-max-txs", 0, "-tx: server-wide live transaction limit (0 = default)")
	txFaultOps := flag.Bool("tx-fault-ops", false, "-tx: accept remote crash/recover fault-injection ops (testing only)")
	txTraceOut := flag.String("tx-trace-out", "", "-tx: record server-side spans and write Chrome trace-event JSON here on shutdown")
	txEventsOut := flag.String("tx-events-out", "", "-tx: write the anomaly flight recorder as JSON here on shutdown")
	pprofBlock := flag.Int("pprof-block", 0, "-tx: goroutine blocking profile sample rate for /debug/pprof/block (0 = off)")
	pprofMutex := flag.Int("pprof-mutex", 0, "-tx: mutex contention profile fraction for /debug/pprof/mutex (0 = off)")
	flag.Parse()

	if *tx {
		err := runTx(txConfig{
			listen:      *listen,
			servers:     *txServers,
			mirrors:     *txMirrors,
			shards:      *txShards,
			spares:      *spares,
			quorum:      *txQuorum,
			commitMode:  *txCommit,
			maxConns:    *txMaxConns,
			maxInFlight: *txMaxInFlight,
			maxTxs:      *txMaxTxs,
			faultOps:    *txFaultOps,
			metricsAddr: *metricsAddr,
			traceOut:    *txTraceOut,
			eventsOut:   *txEventsOut,
			pprofBlock:  *pprofBlock,
			pprofMutex:  *pprofMutex,
		})
		if err != nil {
			log.Fatalf("perseas-server: %v", err)
		}
		return
	}

	capBytes, err := parseSize(*capacity)
	if err != nil {
		log.Fatalf("perseas-server: bad -capacity: %v", err)
	}
	if *label == "" {
		*label = defaultLabel(*listen, *shard)
	}

	srv := memserver.New(
		memserver.WithCapacity(capBytes),
		memserver.WithLabel(*label),
	)
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("perseas-server: %v", err)
	}
	log.Printf("perseas-server: node %s exporting memory on %s (capacity %s)",
		*label, l.Addr(), *capacity)

	if *shard >= 0 {
		log.Printf("perseas-server: node %s mirrors shard %d", *label, *shard)
	}

	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		registerServerMetrics(reg, srv)
		if *shard >= 0 {
			s := uint64(*shard)
			reg.RegisterGauge("perseas_server_shard", "shard index this node mirrors", func() uint64 { return s })
		}
		ml, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatalf("perseas-server: metrics listener: %v", err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg)
		go func() { _ = (&http.Server{Handler: mux}).Serve(ml) }()
		log.Printf("perseas-server: metrics on http://%s/metrics", ml.Addr())
	}

	spareLs, err := spawnSpares(*spares, *label, capBytes)
	if err != nil {
		log.Fatalf("perseas-server: %v", err)
	}
	for _, sl := range spareLs {
		log.Printf("perseas-server: spare node on %s", sl.Addr())
	}

	done := make(chan error, 1)
	go func() { done <- transport.Serve(l, srv) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("perseas-server: %v — shutting down (segments held: %d bytes)", s, srv.Held())
		l.Close()
		for _, sl := range spareLs {
			sl.Close()
		}
		<-done
	case err := <-done:
		if err != nil {
			log.Printf("perseas-server: serve: %v", err)
			os.Exit(1)
		}
	}
}

// defaultLabel derives a node label from the listen address, prefixed
// with the shard identity when the node is part of a partitioned
// deployment — the same shard<i>- convention the sharded rigs use.
func defaultLabel(listen string, shard int) string {
	if shard < 0 {
		return listen
	}
	return fmt.Sprintf("shard%d-%s", shard, listen)
}

// spawnSpares listens on each comma-separated address with its own
// standby memory server, labelled <label>-spare-k. Spares share the
// primary's capacity setting and serve until the process exits.
func spawnSpares(spares, label string, capBytes uint64) ([]net.Listener, error) {
	var ls []net.Listener
	k := 0
	for _, addr := range strings.Split(spares, ",") {
		if addr = strings.TrimSpace(addr); addr == "" {
			continue
		}
		srv := memserver.New(
			memserver.WithCapacity(capBytes),
			memserver.WithLabel(fmt.Sprintf("%s-spare-%d", label, k)),
		)
		sl, err := net.Listen("tcp", addr)
		if err != nil {
			for _, prev := range ls {
				prev.Close()
			}
			return nil, fmt.Errorf("spare listener %s: %w", addr, err)
		}
		go func() { _ = transport.Serve(sl, srv) }()
		ls = append(ls, sl)
		k++
	}
	return ls, nil
}

// registerServerMetrics exposes the memory server's operation counters
// as gauges: the server keeps them under its own lock, so the registry
// reads a fresh snapshot on every scrape.
func registerServerMetrics(reg *obs.Registry, srv *memserver.Server) {
	stat := func(field func(memserver.Stats) uint64) func() uint64 {
		return func() uint64 { return field(srv.Stats()) }
	}
	reg.RegisterGauge("perseas_server_bytes_held", "bytes currently exported", srv.Held)
	reg.RegisterGauge("perseas_server_segments", "segments currently exported",
		func() uint64 { return uint64(len(srv.List())) })
	reg.RegisterGauge("perseas_server_mallocs_total", "segment allocations", stat(func(s memserver.Stats) uint64 { return s.Mallocs }))
	reg.RegisterGauge("perseas_server_frees_total", "segment frees", stat(func(s memserver.Stats) uint64 { return s.Frees }))
	reg.RegisterGauge("perseas_server_connects_total", "segment connects", stat(func(s memserver.Stats) uint64 { return s.Connects }))
	reg.RegisterGauge("perseas_server_disconnects_total", "segment disconnects", stat(func(s memserver.Stats) uint64 { return s.Disconnects }))
	reg.RegisterGauge("perseas_server_write_ops_total", "remote writes applied", stat(func(s memserver.Stats) uint64 { return s.WriteOps }))
	reg.RegisterGauge("perseas_server_read_ops_total", "remote reads served", stat(func(s memserver.Stats) uint64 { return s.ReadOps }))
	reg.RegisterGauge("perseas_server_batch_ops_total", "batched write exchanges", stat(func(s memserver.Stats) uint64 { return s.BatchOps }))
	reg.RegisterGauge("perseas_server_bytes_written_total", "bytes written by clients", stat(func(s memserver.Stats) uint64 { return s.BytesWritten }))
	reg.RegisterGauge("perseas_server_bytes_read_total", "bytes read by clients", stat(func(s memserver.Stats) uint64 { return s.BytesRead }))
}

// parseSize parses "64MiB"/"1GiB"/"4096" style sizes.
func parseSize(s string) (uint64, error) {
	s = strings.TrimSpace(s)
	mult := uint64(1)
	for suffix, m := range map[string]uint64{
		"KiB": 1 << 10, "MiB": 1 << 20, "GiB": 1 << 30,
		"KB": 1000, "MB": 1000_000, "GB": 1000_000_000,
	} {
		if strings.HasSuffix(s, suffix) {
			mult = m
			s = strings.TrimSuffix(s, suffix)
			break
		}
	}
	n, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("parse %q: %w", s, err)
	}
	return n * mult, nil
}
