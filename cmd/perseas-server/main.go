// Command perseas-server runs a remote-memory server: the process that
// exports a workstation's idle main memory to PERSEAS clients over the
// network, accepting remote malloc/free requests and applying remote
// memory copies (the paper's client-server model of Section 4).
//
//	perseas-server -listen :7070 -capacity 256MiB
//
// The server holds every exported segment in its heap; clients that
// crash can reconnect to their named segments and recover.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/transport"
)

func main() {
	listen := flag.String("listen", ":7070", "address to listen on")
	capacity := flag.String("capacity", "0", "exported-memory budget (e.g. 64MiB; 0 = unlimited)")
	label := flag.String("label", "", "node label used in diagnostics (default: listen address)")
	flag.Parse()

	capBytes, err := parseSize(*capacity)
	if err != nil {
		log.Fatalf("perseas-server: bad -capacity: %v", err)
	}
	if *label == "" {
		*label = *listen
	}

	srv := memserver.New(
		memserver.WithCapacity(capBytes),
		memserver.WithLabel(*label),
	)
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("perseas-server: %v", err)
	}
	log.Printf("perseas-server: node %s exporting memory on %s (capacity %s)",
		*label, l.Addr(), *capacity)

	done := make(chan error, 1)
	go func() { done <- transport.Serve(l, srv) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("perseas-server: %v — shutting down (segments held: %d bytes)", s, srv.Held())
		l.Close()
		<-done
	case err := <-done:
		if err != nil {
			log.Printf("perseas-server: serve: %v", err)
			os.Exit(1)
		}
	}
}

// parseSize parses "64MiB"/"1GiB"/"4096" style sizes.
func parseSize(s string) (uint64, error) {
	s = strings.TrimSpace(s)
	mult := uint64(1)
	for suffix, m := range map[string]uint64{
		"KiB": 1 << 10, "MiB": 1 << 20, "GiB": 1 << 30,
		"KB": 1000, "MB": 1000_000, "GB": 1000_000_000,
	} {
		if strings.HasSuffix(s, suffix) {
			mult = m
			s = strings.TrimSuffix(s, suffix)
			break
		}
	}
	n, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("parse %q: %w", s, err)
	}
	return n * mult, nil
}
