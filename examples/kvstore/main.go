// KVStore: a persistent key-value store built on the PERSEAS public API.
//
// This example shows how a data structure lives on top of the library: a
// fixed-slot open-addressing hash table whose every mutation is one
// atomic transaction. Keys and values are length-prefixed in 64-byte
// slots; Put and Delete declare exactly the slots they touch, so a crash
// at any point leaves the table consistent. Halfway through, the example
// kills the "machine" and recovers the store from the mirrors.
//
// Run with: go run ./examples/kvstore
package main

import (
	"fmt"
	"hash/fnv"
	"log"

	perseas "github.com/ics-forth/perseas"
)

const (
	slotSize  = 64
	slotCount = 1024
	// Slot layout: [1B keyLen][keyLen bytes][1B valLen][valLen bytes];
	// keyLen 0 marks an empty slot.
	maxKey = 24
	maxVal = slotSize - maxKey - 2
)

// KV is a persistent hash table on one PERSEAS database.
type KV struct {
	lib *perseas.Library
	db  perseas.DB
}

// OpenKV creates (or re-opens after recovery) the table.
func OpenKV(lib *perseas.Library) (*KV, error) {
	if db, err := lib.OpenDB("kv"); err == nil {
		return &KV{lib: lib, db: db}, nil
	}
	db, err := lib.CreateDB("kv", slotSize*slotCount)
	if err != nil {
		return nil, err
	}
	if err := lib.InitDB(db); err != nil {
		return nil, err
	}
	return &KV{lib: lib, db: db}, nil
}

func slotOf(key string, probe int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return (h.Sum64() + uint64(probe)) % slotCount
}

// Put stores key=value in one atomic transaction.
func (kv *KV) Put(key, value string) error {
	if len(key) == 0 || len(key) > maxKey || len(value) > maxVal {
		return fmt.Errorf("kv: key/value size out of bounds")
	}
	return kv.lib.Update(func(tx *perseas.Tx) error {
		for probe := 0; probe < slotCount; probe++ {
			off := slotOf(key, probe) * slotSize
			slot := kv.db.Bytes()[off : off+slotSize]
			existing := slotKey(slot)
			if existing != "" && existing != key {
				continue // occupied by someone else: probe on
			}
			buf, err := tx.Writable(kv.db, off, slotSize)
			if err != nil {
				return err
			}
			encodeSlot(buf, key, value)
			return nil
		}
		return fmt.Errorf("kv: table full")
	})
}

// Get returns the value for key.
func (kv *KV) Get(key string) (string, bool) {
	for probe := 0; probe < slotCount; probe++ {
		off := slotOf(key, probe) * slotSize
		slot := kv.db.Bytes()[off : off+slotSize]
		k := slotKey(slot)
		if k == "" {
			return "", false
		}
		if k == key {
			keyLen := int(slot[0])
			valLen := int(slot[1+keyLen])
			return string(slot[2+keyLen : 2+keyLen+valLen]), true
		}
	}
	return "", false
}

// Delete removes key (leaving a tombstone so probe chains stay intact).
func (kv *KV) Delete(key string) error {
	return kv.lib.Update(func(tx *perseas.Tx) error {
		for probe := 0; probe < slotCount; probe++ {
			off := slotOf(key, probe) * slotSize
			slot := kv.db.Bytes()[off : off+slotSize]
			k := slotKey(slot)
			if k == "" {
				return nil // absent: nothing to do
			}
			if k == key {
				buf, err := tx.Writable(kv.db, off, slotSize)
				if err != nil {
					return err
				}
				encodeSlot(buf, "\x00tombstone", "")
				return nil
			}
		}
		return nil
	})
}

func slotKey(slot []byte) string {
	n := int(slot[0])
	if n == 0 || n > maxKey {
		return ""
	}
	return string(slot[1 : 1+n])
}

func encodeSlot(buf []byte, key, value string) {
	for i := range buf {
		buf[i] = 0
	}
	buf[0] = byte(len(key))
	copy(buf[1:], key)
	buf[1+len(key)] = byte(len(value))
	copy(buf[2+len(key):], value)
}

func main() {
	cluster, err := perseas.NewLocalCluster(2)
	if err != nil {
		log.Fatal(err)
	}
	lib, err := perseas.Init(cluster.RAM, cluster.Clock)
	if err != nil {
		log.Fatal(err)
	}
	kv, err := OpenKV(lib)
	if err != nil {
		log.Fatal(err)
	}

	// Populate.
	users := map[string]string{
		"ada":     "analyst",
		"turing":  "theorist",
		"hopper":  "admiral",
		"dolphin": "interconnect",
	}
	for k, v := range users {
		if err := kv.Put(k, v); err != nil {
			log.Fatal(err)
		}
	}
	if err := kv.Delete("dolphin"); err != nil {
		log.Fatal(err)
	}
	if err := kv.Put("ada", "countess"); err != nil { // overwrite
		log.Fatal(err)
	}
	fmt.Println("before crash:")
	dump(kv, "ada", "turing", "hopper", "dolphin")

	// The machine dies mid-flight; a new process attaches and reopens.
	if err := lib.Crash(perseas.CrashPower); err != nil {
		log.Fatal(err)
	}
	lib2, err := perseas.Attach(cluster.RAM, cluster.Clock)
	if err != nil {
		log.Fatal(err)
	}
	kv2, err := OpenKV(lib2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after recovery:")
	dump(kv2, "ada", "turing", "hopper", "dolphin")
}

func dump(kv *KV, keys ...string) {
	for _, k := range keys {
		if v, ok := kv.Get(k); ok {
			fmt.Printf("  %-8s = %s\n", k, v)
		} else {
			fmt.Printf("  %-8s   (absent)\n", k)
		}
	}
}
