// Bank: a debit-credit banking service on PERSEAS over real TCP.
//
// This example exercises the full client-server deployment of the paper:
// it spawns two remote-memory servers on loopback TCP ports (stand-ins
// for the two workstations on different power supplies), mirrors a bank
// database into both, processes a stream of transfer transactions, then
// verifies the money-conservation invariant.
//
// Run with: go run ./examples/bank [-accounts 1000] [-transfers 5000]
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"time"

	"github.com/ics-forth/perseas/internal/core"
	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/transport"
)

const accountSize = 16 // 8-byte balance + 8-byte version

func main() {
	accounts := flag.Int("accounts", 1000, "number of accounts")
	transfers := flag.Int("transfers", 5000, "transfer transactions to run")
	flag.Parse()

	// Start two mirror nodes, each a real TCP memory server.
	var mirrors []netram.Mirror
	for i := 0; i < 2; i++ {
		addr, stop := startServer(fmt.Sprintf("ups-%d", i))
		defer stop()
		tr, err := transport.DialTCP(addr)
		if err != nil {
			log.Fatal(err)
		}
		defer tr.Close()
		mirrors = append(mirrors, netram.Mirror{Name: addr, T: tr})
		fmt.Printf("mirror %d: %s\n", i, addr)
	}
	ram, err := netram.NewClient(mirrors)
	if err != nil {
		log.Fatal(err)
	}
	lib, err := core.Init(ram, simclock.NewWall())
	if err != nil {
		log.Fatal(err)
	}

	// Create the ledger: every account opens with 100 units.
	db, err := lib.CreateDB("ledger", uint64(*accounts)*accountSize)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < *accounts; i++ {
		binary.BigEndian.PutUint64(db.Bytes()[i*accountSize:], 100)
	}
	if err := lib.InitDB(db); err != nil {
		log.Fatal(err)
	}

	// Process transfers: each is one atomic PERSEAS transaction over
	// two accounts.
	rng := rand.New(rand.NewSource(2026))
	start := time.Now()
	for i := 0; i < *transfers; i++ {
		from := rng.Intn(*accounts)
		to := rng.Intn(*accounts)
		if from == to {
			continue
		}
		amount := uint64(1 + rng.Intn(10))
		if err := transfer(lib, from, to, amount); err != nil {
			log.Fatalf("transfer %d: %v", i, err)
		}
	}
	elapsed := time.Since(start)

	// The invariant: money is conserved.
	var total uint64
	for i := 0; i < *accounts; i++ {
		total += binary.BigEndian.Uint64(db.Bytes()[i*accountSize:])
	}
	fmt.Printf("processed %d transfers in %v (%.0f tx/s over real TCP)\n",
		*transfers, elapsed.Round(time.Millisecond),
		float64(*transfers)/elapsed.Seconds())
	fmt.Printf("total balance: %d (expected %d) — %s\n",
		total, uint64(*accounts)*100, verdict(total == uint64(*accounts)*100))
}

// transfer moves amount between two accounts atomically.
func transfer(lib *core.Library, from, to int, amount uint64) error {
	ledger, err := lib.OpenDB("ledger")
	if err != nil {
		return err
	}
	tx, err := lib.BeginTx()
	if err != nil {
		return err
	}
	fromOff := uint64(from) * accountSize
	toOff := uint64(to) * accountSize
	if err := tx.SetRange(ledger, fromOff, accountSize); err != nil {
		return abortWith(tx, err)
	}
	if err := tx.SetRange(ledger, toOff, accountSize); err != nil {
		return abortWith(tx, err)
	}
	buf := ledger.Bytes()
	fromBal := binary.BigEndian.Uint64(buf[fromOff:])
	if fromBal < amount {
		// Insufficient funds: abort restores both ranges untouched.
		return tx.Abort()
	}
	toBal := binary.BigEndian.Uint64(buf[toOff:])
	binary.BigEndian.PutUint64(buf[fromOff:], fromBal-amount)
	binary.BigEndian.PutUint64(buf[toOff:], toBal+amount)
	// Bump versions.
	binary.BigEndian.PutUint64(buf[fromOff+8:], binary.BigEndian.Uint64(buf[fromOff+8:])+1)
	binary.BigEndian.PutUint64(buf[toOff+8:], binary.BigEndian.Uint64(buf[toOff+8:])+1)
	return tx.Commit()
}

func abortWith(tx *core.Tx, err error) error {
	if aerr := tx.Abort(); aerr != nil {
		return fmt.Errorf("%v (abort: %v)", err, aerr)
	}
	return err
}

// startServer launches one memory server on an ephemeral loopback port.
func startServer(label string) (addr string, stop func()) {
	srv := memserver.New(memserver.WithLabel(label))
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = transport.Serve(l, srv) }()
	return l.Addr().String(), func() { l.Close() }
}

func verdict(ok bool) string {
	if ok {
		return "consistent"
	}
	return "CORRUPT"
}
