// Quickstart: the smallest complete PERSEAS program.
//
// It builds a reliable network RAM layer over two in-process mirror
// nodes, creates a mirrored main-memory database, and runs one atomic
// transaction through the paper's seven-call interface:
//
//	Init -> CreateDB (PERSEAS_malloc) -> InitDB (PERSEAS_init_remote_db)
//	     -> Begin -> SetRange -> update in place -> Commit
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/ics-forth/perseas/internal/core"
	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/sci"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/transport"
)

func main() {
	// One shared virtual clock prices every memory copy and SCI packet.
	clock := simclock.NewSim()

	// Two remote workstations export their idle memory. (In a real
	// deployment these are perseas-server processes on other machines,
	// reached with transport.DialTCP.)
	var mirrors []netram.Mirror
	for i := 0; i < 2; i++ {
		node := memserver.New(memserver.WithLabel(fmt.Sprintf("node-%d", i)))
		tr, err := transport.NewInProc(node, sci.DefaultParams(), clock)
		if err != nil {
			log.Fatal(err)
		}
		mirrors = append(mirrors, netram.Mirror{Name: node.Label(), T: tr})
	}
	ram, err := netram.NewClient(mirrors)
	if err != nil {
		log.Fatal(err)
	}

	// PERSEAS_init.
	lib, err := core.Init(ram, clock)
	if err != nil {
		log.Fatal(err)
	}

	// PERSEAS_malloc + initialisation + PERSEAS_init_remote_db.
	db, err := lib.CreateDB("greetings", 64)
	if err != nil {
		log.Fatal(err)
	}
	copy(db.Bytes(), "hello, volatile world")
	if err := lib.InitDB(db); err != nil {
		log.Fatal(err)
	}

	// One atomic, mirrored transaction through an explicit handle.
	tx, err := lib.Begin()
	if err != nil {
		log.Fatal(err)
	}
	if err := tx.SetRange(db, 0, 21); err != nil {
		log.Fatal(err)
	}
	copy(db.Bytes(), "hello, durable world!")
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("database:   %q\n", db.Bytes()[:21])
	fmt.Printf("committed:  tx %d\n", lib.CommittedTxID())
	fmt.Printf("virtual us: %.1f (three memory copies, zero disk writes)\n",
		float64(clock.Now().Nanoseconds())/1e3)
}
