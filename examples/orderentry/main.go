// Order entry: the wholesale-supplier scenario of the paper's TPC-C-like
// benchmark, written against the PERSEAS public API.
//
// A supplier takes orders: each order atomically bumps the district's
// order counter, records the order, and decrements the stock rows of
// every line item — a dozen scattered writes that must land together or
// not at all. Halfway through, the example injects a primary-node crash
// in the middle of an order and shows recovery discarding exactly the
// in-flight order and nothing else.
//
// Run with: go run ./examples/orderentry
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"

	"github.com/ics-forth/perseas/internal/core"
	"github.com/ics-forth/perseas/internal/engine"
	"github.com/ics-forth/perseas/internal/fault"
	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/sci"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/transport"
)

const (
	nItems    = 500
	stockRec  = 16 // 8-byte quantity + padding
	counterSz = 8
	initQty   = 1_000
)

func main() {
	clock := simclock.NewSim()
	var mirrors []netram.Mirror
	for i := 0; i < 2; i++ {
		node := memserver.New(memserver.WithLabel(fmt.Sprintf("node-%d", i)))
		tr, err := transport.NewInProc(node, sci.DefaultParams(), clock)
		if err != nil {
			log.Fatal(err)
		}
		mirrors = append(mirrors, netram.Mirror{Name: node.Label(), T: tr})
	}
	ram, err := netram.NewClient(mirrors)
	if err != nil {
		log.Fatal(err)
	}
	lib, err := core.Init(ram, clock)
	if err != nil {
		log.Fatal(err)
	}

	// The supplier's tables: a stock table and an order counter.
	stock, err := lib.CreateDB("stock", nItems*stockRec)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < nItems; i++ {
		binary.BigEndian.PutUint64(stock.Bytes()[i*stockRec:], initQty)
	}
	if err := lib.InitDB(stock); err != nil {
		log.Fatal(err)
	}
	counter, err := lib.CreateDB("orders", counterSz)
	if err != nil {
		log.Fatal(err)
	}
	if err := lib.InitDB(counter); err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	var unitsOrdered uint64

	// Phase 1: 200 committed orders.
	for i := 0; i < 200; i++ {
		unitsOrdered += placeOrder(lib, stock, counter, rng)
	}
	fmt.Printf("phase 1: %d orders committed, %d units shipped\n",
		orderCount(counter), unitsOrdered)

	// Phase 2: crash in the middle of an order — after SetRange and the
	// in-place updates, before Commit.
	torn, err := lib.BeginTx()
	if err != nil {
		log.Fatal(err)
	}
	item := rng.Intn(nItems)
	if err := torn.SetRange(stock, uint64(item)*stockRec, 8); err != nil {
		log.Fatal(err)
	}
	if err := torn.SetRange(counter, 0, 8); err != nil {
		log.Fatal(err)
	}
	binary.BigEndian.PutUint64(stock.Bytes()[item*stockRec:], 0) // half-applied order
	binary.BigEndian.PutUint64(counter.Bytes(), 9999)
	fmt.Println("phase 2: power failure on the primary mid-order!")
	if err := lib.Crash(fault.CrashPower); err != nil {
		log.Fatal(err)
	}

	// Phase 3: recover from the mirrors; the torn order is rolled back.
	if err := lib.Recover(); err != nil {
		log.Fatal(err)
	}
	stock2, err := lib.OpenDB("stock")
	if err != nil {
		log.Fatal(err)
	}
	counter2, err := lib.OpenDB("orders")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 3: recovered — %d orders on the books (torn order discarded)\n",
		orderCount(counter2))

	// The conservation invariant holds exactly.
	var remaining uint64
	for i := 0; i < nItems; i++ {
		remaining += binary.BigEndian.Uint64(stock2.Bytes()[i*stockRec:])
	}
	fmt.Printf("stock check: %d remaining + %d shipped = %d (expected %d)\n",
		remaining, unitsOrdered, remaining+unitsOrdered, uint64(nItems)*initQty)

	// Phase 4: business continues on the recovered state.
	for i := 0; i < 100; i++ {
		unitsOrdered += placeOrder(lib, stock2, counter2, rng)
	}
	fmt.Printf("phase 4: %d orders total after resuming\n", orderCount(counter2))
	fmt.Printf("virtual time elapsed: %v\n", clock.Now())
}

// placeOrder runs one atomic multi-line order and returns the units sold.
func placeOrder(lib *core.Library, stock, counter engine.DB, rng *rand.Rand) uint64 {
	lines := 5 + rng.Intn(11)
	tx, err := lib.BeginTx()
	if err != nil {
		log.Fatal(err)
	}
	if err := tx.SetRange(counter, 0, 8); err != nil {
		log.Fatal(err)
	}
	binary.BigEndian.PutUint64(counter.Bytes(), binary.BigEndian.Uint64(counter.Bytes())+1)

	var units uint64
	for l := 0; l < lines; l++ {
		item := rng.Intn(nItems)
		qty := uint64(1 + rng.Intn(5))
		off := uint64(item) * stockRec
		if err := tx.SetRange(stock, off, 8); err != nil {
			log.Fatal(err)
		}
		have := binary.BigEndian.Uint64(stock.Bytes()[off:])
		if have < qty {
			qty = have // partial fill
		}
		binary.BigEndian.PutUint64(stock.Bytes()[off:], have-qty)
		units += qty
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	return units
}

func orderCount(counter engine.DB) uint64 {
	return binary.BigEndian.Uint64(counter.Bytes())
}
