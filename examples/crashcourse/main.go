// Crashcourse: a guided tour of every failure mode the paper discusses,
// showing what survives where.
//
// It walks through four scenes:
//
//  1. primary crash with a transaction that never started propagating —
//     the remote database is already legal;
//  2. primary crash in the middle of commit's push phase — the remote
//     undo log rolls the mirror back;
//  3. one mirror node dies — the database stays available through the
//     other mirror (the paper's availability argument);
//  4. take-over: a completely fresh "workstation" attaches to the
//     surviving mirrors and continues the workload.
//
// Run with: go run ./examples/crashcourse
package main

import (
	"fmt"
	"log"

	"github.com/ics-forth/perseas/internal/core"
	"github.com/ics-forth/perseas/internal/fault"
	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/sci"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/transport"
)

func main() {
	clock := simclock.NewSim()
	var servers []*memserver.Server
	var mirrors []netram.Mirror
	for i := 0; i < 2; i++ {
		node := memserver.New(memserver.WithLabel(fmt.Sprintf("node-%c", 'A'+i)))
		tr, err := transport.NewInProc(node, sci.DefaultParams(), clock)
		if err != nil {
			log.Fatal(err)
		}
		servers = append(servers, node)
		mirrors = append(mirrors, netram.Mirror{Name: node.Label(), T: tr})
	}
	ram, err := netram.NewClient(mirrors)
	if err != nil {
		log.Fatal(err)
	}
	lib, err := core.Init(ram, clock)
	if err != nil {
		log.Fatal(err)
	}

	db, err := lib.CreateDB("state", 64)
	if err != nil {
		log.Fatal(err)
	}
	copy(db.Bytes(), "v0------")
	if err := lib.InitDB(db); err != nil {
		log.Fatal(err)
	}
	commit(lib, db, "v1------")
	fmt.Printf("start:   %s\n", db.Bytes()[:8])

	// Scene 1: crash before any propagation.
	tx1, err := lib.BeginTx()
	must(err)
	must(tx1.SetRange(db, 0, 8))
	copy(db.Bytes(), "garbage!")
	must(lib.Crash(fault.CrashOS))
	must(lib.Recover())
	db = reopen(lib)
	fmt.Printf("scene 1: %s  (uncommitted update discarded; OS crash)\n", db.Bytes()[:8])

	// Scene 2: crash mid-commit — the update partially reached the
	// mirrors; the remote undo log rolls them back.
	tx2, err := lib.BeginTx()
	must(err)
	must(tx2.SetRange(db, 0, 8))
	copy(db.Bytes(), "halfway!")
	pushPartial(lib, db) // simulate commit interrupted between pushes
	must(lib.Crash(fault.CrashPower))
	must(lib.Recover())
	db = reopen(lib)
	fmt.Printf("scene 2: %s  (mirror rolled back from remote undo log; power crash)\n", db.Bytes()[:8])

	// Scene 3: one mirror dies; the database stays available.
	servers[0].Crash()
	commit(lib, db, "v2------")
	fmt.Printf("scene 3: %s  (committed with node-A down)\n", db.Bytes()[:8])

	// Scene 4: the primary vanishes; a brand-new workstation attaches
	// to the surviving mirror and takes over.
	takeover, err := core.Attach(ram, clock)
	if err != nil {
		log.Fatal(err)
	}
	db2, err := takeover.OpenDB("state")
	if err != nil {
		log.Fatal(err)
	}
	commit(takeover, db2, "v3------")
	fmt.Printf("scene 4: %s  (fresh node took over and committed tx %d)\n",
		db2.Bytes()[:8], takeover.CommittedTxID())
}

func commit(lib *core.Library, db interface {
	Bytes() []byte
}, val string) {
	d := db.(*core.Database)
	tx, err := lib.BeginTx()
	must(err)
	must(tx.SetRange(d, 0, 8))
	copy(d.Bytes(), val)
	must(tx.Commit())
}

// pushPartial simulates a crash window inside Commit: the data range has
// propagated to the mirrors but the commit word has not.
func pushPartial(lib *core.Library, db interface{ Bytes() []byte }) {
	d := db.(*core.Database)
	must(lib.Net().Push(d.Region(), 0, 8))
}

func reopen(lib *core.Library) *core.Database {
	db, err := lib.OpenDB("state")
	if err != nil {
		log.Fatal(err)
	}
	return db.(*core.Database)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
