module github.com/ics-forth/perseas

go 1.22
