// Package perseas is a transaction library for main-memory databases
// that decouples transaction performance from magnetic-disk speed — a
// faithful reimplementation of PERSEAS (Papathanasiou & Markatos,
// "Lightweight Transactions on Networks of Workstations", ICDCS 1998).
//
// PERSEAS keeps the database in local main memory and mirrors it in the
// memories of one or more remote workstations over a fast interconnect.
// Transactions then need only memory copies:
//
//	lib, _ := perseas.Init(ram, clock)
//	db, _ := lib.CreateDB("accounts", 1<<20)
//	// ... fill initial records ...
//	lib.InitDB(db)
//
//	tx, _ := lib.BeginTx()
//	tx.SetRange(db, offset, length) // logs the before-image
//	copy(db.Bytes()[offset:], update)
//	tx.Commit()                     // pushes the range + commit word
//
// Any number of transactions may be in flight at once; handles are
// independent, and transactions that declare overlapping ranges fail
// fast with ErrConflict.
//
// If the machine crashes, Attach on any workstation reconnects to the
// surviving mirrors, rolls back whatever an in-flight transaction had
// already propagated, and hands the database back.
//
// Two deployment styles are supported:
//
//   - NewLocalCluster builds an in-process mirror set over the
//     calibrated PCI-SCI model and a deterministic virtual clock —
//     ideal for tests and for reproducing the paper's figures;
//   - DialMirrors connects to perseas-server processes over TCP for a
//     real multi-machine deployment.
package perseas

import (
	"fmt"

	"github.com/ics-forth/perseas/internal/core"
	"github.com/ics-forth/perseas/internal/engine"
	"github.com/ics-forth/perseas/internal/fault"
	"github.com/ics-forth/perseas/internal/hostmem"
	"github.com/ics-forth/perseas/internal/memserver"
	"github.com/ics-forth/perseas/internal/netram"
	"github.com/ics-forth/perseas/internal/sci"
	"github.com/ics-forth/perseas/internal/simclock"
	"github.com/ics-forth/perseas/internal/transport"
)

// Library is a PERSEAS instance: one application's window onto its
// mirrored main-memory databases. Methods are safe for concurrent use.
type Library = core.Library

// Database is one mirrored main-memory database region.
type Database = core.Database

// Tx is one in-flight transaction: the handle returned by
// Library.BeginTx and passed to Library.Update closures.
type Tx = core.Tx

// DB is the interface every database handle satisfies.
type DB = engine.DB

// Mirror names one remote memory node.
type Mirror = netram.Mirror

// RAM is the reliable network RAM layer a Library runs on.
type RAM = netram.Client

// Clock is the time source substrates charge costs to.
type Clock = simclock.Clock

// Option configures a Library.
type Option = core.Option

// CrashKind enumerates failure classes for failure injection.
type CrashKind = fault.CrashKind

// Crash kinds.
const (
	CrashProcess = fault.CrashProcess
	CrashOS      = fault.CrashOS
	CrashPower   = fault.CrashPower
)

// ErrConflict reports a SetRange that overlapped a range already
// declared by another in-flight transaction.
var ErrConflict = engine.ErrConflict

// Re-exported configuration options.
var (
	// WithUndoLogSize bounds one transaction's before-images.
	WithUndoLogSize = core.WithUndoLogSize
	// WithMetaSize sizes the metadata region.
	WithMetaSize = core.WithMetaSize
	// WithMemModel overrides the local copy-cost model.
	WithMemModel = core.WithMemModel
	// WithNamespace isolates this application's segments so several
	// applications can share the same mirror workstations.
	WithNamespace = core.WithNamespace
)

// Init creates a PERSEAS library over a reliable network RAM layer
// (the paper's PERSEAS_init).
func Init(ram *RAM, clock Clock, opts ...Option) (*Library, error) {
	return core.Init(ram, clock, opts...)
}

// Attach joins an existing PERSEAS database from any workstation after
// the primary failed: it reconnects to the named remote segments, runs
// recovery, and returns a ready library.
func Attach(ram *RAM, clock Clock, opts ...Option) (*Library, error) {
	return core.Attach(ram, clock, opts...)
}

// NewRAM builds the reliable network RAM layer over the given mirrors.
func NewRAM(mirrors []Mirror, opts ...netram.Option) (*RAM, error) {
	return netram.NewClient(mirrors, opts...)
}

// DialMirrors connects to remote perseas-server processes over TCP and
// assembles them into a reliable network RAM layer.
func DialMirrors(addrs ...string) (*RAM, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("perseas: at least one mirror address required")
	}
	var mirrors []Mirror
	for _, addr := range addrs {
		tr, err := transport.DialTCP(addr)
		if err != nil {
			for _, m := range mirrors {
				_ = m.T.Close()
			}
			return nil, fmt.Errorf("perseas: dial mirror %s: %w", addr, err)
		}
		mirrors = append(mirrors, Mirror{Name: addr, T: tr})
	}
	return NewRAM(mirrors)
}

// LocalCluster is an in-process mirror set: remote memory nodes, the
// calibrated PCI-SCI interconnect model and a deterministic clock. It
// reproduces the paper's two-PC prototype inside one process.
type LocalCluster struct {
	// RAM is the assembled reliable network RAM layer.
	RAM *RAM
	// Clock is the virtual clock every cost is charged to.
	Clock *simclock.SimClock
	// Nodes are the mirror memory servers (crash them to test
	// recovery).
	Nodes []*memserver.Server
}

// NewLocalCluster builds a cluster of n mirror nodes (n >= 1).
func NewLocalCluster(n int) (*LocalCluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("perseas: cluster needs at least one mirror")
	}
	clock := simclock.NewSim()
	params := sci.DefaultParams()
	var mirrors []Mirror
	var nodes []*memserver.Server
	for i := 0; i < n; i++ {
		node := memserver.New(memserver.WithLabel(fmt.Sprintf("node-%d", i)))
		tr, err := transport.NewInProc(node, params, clock, transport.WithHops(i, params))
		if err != nil {
			return nil, err
		}
		mirrors = append(mirrors, Mirror{Name: node.Label(), T: tr})
		nodes = append(nodes, node)
	}
	ram, err := NewRAM(mirrors)
	if err != nil {
		return nil, err
	}
	return &LocalCluster{RAM: ram, Clock: clock, Nodes: nodes}, nil
}

// NewWallClock returns a real-time clock for TCP deployments.
func NewWallClock() Clock { return simclock.NewWall() }

// DefaultMemModel returns the era-calibrated local-copy cost model.
func DefaultMemModel() hostmem.Model { return hostmem.Default() }
